//! Parameter checkpointing.
//!
//! Trained model + detector weights serialize to a single JSON document so
//! experiments are resumable and results shippable. The format is
//! deliberately simple (names, shapes, row-major values); loading restores
//! a [`ParamSet`] whose registration order — and therefore every
//! [`ParamId`](dota_autograd::ParamId) handed out by re-initialized models
//! and hooks with the same construction order — matches the saved one.
//!
//! Two robustness properties matter for the crash-resume and watchdog
//! paths:
//!
//! * **Crash-safe writes** — [`save_params`] writes to a temp file in the
//!   destination directory and atomically renames it into place, so a
//!   crash mid-write can never leave a truncated checkpoint under the
//!   final name (a reader sees the old file or the new file, nothing in
//!   between).
//! * **Bit-exact values** — format v2 stores each `f32` as its raw bit
//!   pattern (`data_bits`), so NaN/Inf parameters (e.g. captured by the
//!   divergence watchdog for post-mortem) round-trip exactly; the JSON
//!   layer would otherwise collapse non-finite floats to `null`. Format
//!   v1 (`data` as plain floats) is still loaded.

use dota_autograd::ParamSet;
use dota_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// One serialized parameter (format v2: raw `f32` bit patterns).
#[derive(Debug, Serialize, Deserialize)]
struct SavedParam {
    name: String,
    rows: usize,
    cols: usize,
    data_bits: Vec<u32>,
}

/// The on-disk checkpoint document (format v2).
#[derive(Debug, Serialize, Deserialize)]
struct Checkpoint {
    format_version: u32,
    params: Vec<SavedParam>,
}

/// One serialized parameter in the legacy v1 format (plain floats; cannot
/// represent NaN/Inf).
#[derive(Debug, Deserialize)]
struct SavedParamV1 {
    name: String,
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

#[derive(Debug, Deserialize)]
struct CheckpointV1 {
    #[allow(dead_code)]
    format_version: u32,
    params: Vec<SavedParamV1>,
}

/// Minimal probe to dispatch on the version before a full parse.
#[derive(Debug, Deserialize)]
struct VersionProbe {
    format_version: u32,
}

const FORMAT_VERSION: u32 = 2;

/// Errors from loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid checkpoint document.
    Parse(String),
    /// The document's format version is not supported.
    Version(u32),
    /// A parameter's data length disagrees with its shape.
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Parse(e) => write!(f, "invalid checkpoint document: {e}"),
            CheckpointError::Version(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Corrupt(name) => {
                write!(f, "parameter `{name}` has inconsistent shape/data")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes `contents` to `path` crash-safely: the bytes go to a uniquely
/// named temp file in `path`'s directory, which is then atomically renamed
/// over `path`. A reader (or a resume after a crash) sees either the
/// previous complete file or the new complete file, never a partial write.
///
/// # Errors
///
/// Propagates the underlying I/O error (the temp file is cleaned up).
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
    })?;
    let tmp_name = format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    if let Err(e) = std::fs::write(&tmp, contents) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

/// Serializes every parameter of `params` to JSON at `path`, crash-safely
/// (temp file + atomic rename; see [`write_atomic`]). Values are stored as
/// raw bit patterns, so non-finite parameters survive the round trip.
///
/// # Errors
///
/// Returns a [`CheckpointError`] on filesystem failure.
pub fn save_params(params: &ParamSet, path: &Path) -> Result<(), CheckpointError> {
    let doc = Checkpoint {
        format_version: FORMAT_VERSION,
        params: params
            .ids()
            .map(|id| {
                let m = params.value(id);
                SavedParam {
                    name: params.name(id).to_owned(),
                    rows: m.rows(),
                    cols: m.cols(),
                    data_bits: m.as_slice().iter().map(|v| v.to_bits()).collect(),
                }
            })
            .collect(),
    };
    let json = serde_json::to_string(&doc).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    write_atomic(path, &json)?;
    Ok(())
}

/// Loads a checkpoint into a fresh [`ParamSet`], preserving registration
/// order (so ids line up with a model/hook built in the same order).
/// Understands the current bit-exact v2 format and the legacy v1 float
/// format.
///
/// # Errors
///
/// Returns a [`CheckpointError`] if the file is missing, malformed, from an
/// unsupported version, or internally inconsistent.
pub fn load_params(path: &Path) -> Result<ParamSet, CheckpointError> {
    let json = std::fs::read_to_string(path)?;
    let probe: VersionProbe =
        serde_json::from_str(&json).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    let params: Vec<(String, usize, usize, Vec<f32>)> = match probe.format_version {
        1 => {
            let doc: CheckpointV1 =
                serde_json::from_str(&json).map_err(|e| CheckpointError::Parse(e.to_string()))?;
            doc.params
                .into_iter()
                .map(|p| (p.name, p.rows, p.cols, p.data))
                .collect()
        }
        2 => {
            let doc: Checkpoint =
                serde_json::from_str(&json).map_err(|e| CheckpointError::Parse(e.to_string()))?;
            doc.params
                .into_iter()
                .map(|p| {
                    let data = p.data_bits.iter().map(|&b| f32::from_bits(b)).collect();
                    (p.name, p.rows, p.cols, data)
                })
                .collect()
        }
        v => return Err(CheckpointError::Version(v)),
    };
    let mut set = ParamSet::new();
    for (name, rows, cols, data) in params {
        if data.len() != rows * cols {
            return Err(CheckpointError::Corrupt(name));
        }
        let m = Matrix::from_vec(rows, cols, data)
            .map_err(|_| CheckpointError::Corrupt(name.clone()))?;
        set.add(&name, m);
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{self, TrainOptions};
    use dota_transformer::NoHook;
    use dota_workloads::{Benchmark, TaskSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dota_ckpt_{name}_{}.json", std::process::id()));
        p
    }

    #[test]
    fn round_trip_preserves_everything() {
        let spec = TaskSpec::tiny(Benchmark::Text, 20, 1);
        let (_, params) = experiments::build_model(&spec, 1);
        let path = tmp("roundtrip");
        save_params(&params, &path).unwrap();
        let loaded = load_params(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(params.len(), loaded.len());
        for (a, b) in params.ids().zip(loaded.ids()) {
            assert_eq!(params.name(a), loaded.name(b));
            assert_eq!(params.value(a), loaded.value(b));
        }
    }

    #[test]
    fn non_finite_values_round_trip_bit_exactly() {
        let mut params = ParamSet::new();
        let values = vec![
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
            f32::MIN_POSITIVE / 2.0, // subnormal
            1.5,
        ];
        params.add("weird", Matrix::from_vec(2, 3, values.clone()).unwrap());
        let path = tmp("nonfinite");
        save_params(&params, &path).unwrap();
        let loaded = load_params(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let id = loaded.ids().next().unwrap();
        let got = loaded.value(id).as_slice().to_vec();
        for (a, b) in values.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn truncated_file_is_parse_error_not_panic() {
        let spec = TaskSpec::tiny(Benchmark::Text, 20, 1);
        let (_, params) = experiments::build_model(&spec, 1);
        let path = tmp("truncated");
        save_params(&params, &path).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        // A crash mid-write of a *non-atomic* writer: half the document.
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = load_params(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, CheckpointError::Parse(_)), "{err}");
    }

    #[test]
    fn legacy_v1_documents_still_load() {
        let path = tmp("v1");
        std::fs::write(
            &path,
            r#"{"format_version":1,"params":[{"name":"w","rows":1,"cols":2,"data":[1.5,-2.0]}]}"#,
        )
        .unwrap();
        let loaded = load_params(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let id = loaded.ids().next().unwrap();
        assert_eq!(loaded.name(id), "w");
        assert_eq!(loaded.value(id).as_slice(), &[1.5, -2.0]);
    }

    #[test]
    fn atomic_write_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("dota_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        write_atomic(&path, "{\"ok\":true}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}");
        let others: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "ckpt.json")
            .collect();
        std::fs::remove_dir_all(&dir).ok();
        assert!(others.is_empty(), "leftover temp files: {others:?}");
    }

    #[test]
    fn reloaded_model_gives_identical_predictions() {
        let spec = TaskSpec::tiny(Benchmark::Text, 20, 2);
        let (train, test) = spec.generate_split(60, 20);
        let (model, mut params) = experiments::build_model(&spec, 2);
        experiments::train_dense(
            &model,
            &mut params,
            &train,
            &TrainOptions {
                epochs: 4,
                ..Default::default()
            },
        );
        let path = tmp("predictions");
        save_params(&params, &path).unwrap();
        let loaded = load_params(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for s in test.iter().take(5) {
            let a = model.infer(&params, &s.ids, &NoHook);
            let b = model.infer(&loaded, &s.ids, &NoHook);
            assert_eq!(a.logits, b.logits);
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_params(Path::new("/nonexistent/dota.json")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn malformed_document_is_parse_error() {
        let path = tmp("malformed");
        std::fs::write(&path, "not json").unwrap();
        let err = load_params(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, CheckpointError::Parse(_)), "{err}");
    }

    #[test]
    fn corrupt_shape_detected() {
        let path = tmp("corrupt");
        std::fs::write(
            &path,
            r#"{"format_version":2,"params":[{"name":"w","rows":2,"cols":2,"data_bits":[0]}]}"#,
        )
        .unwrap();
        let err = load_params(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }

    #[test]
    fn future_version_rejected() {
        let path = tmp("version");
        std::fs::write(&path, r#"{"format_version":999,"params":[]}"#).unwrap();
        let err = load_params(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, CheckpointError::Version(999)), "{err}");
    }
}
