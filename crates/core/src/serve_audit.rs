//! `dota analyze --serve` — the retention-degradation audit.
//!
//! Joins a serve timeline document (`dota serve --bench --timeline`) with
//! the cost model's structure into the per-request attribution the
//! capacity-planning story needs: *which* requests were degraded, what
//! each degradation saved in attended K/V positions, and where each
//! request's latency budget went. Three sections per bench cell:
//!
//! * **per-retention-tier table** — request counts, served fraction, and
//!   the mean attended-position reduction each ladder rung produced
//!   (the serving-side analogue of the paper's Fig. 11
//!   accuracy-vs-retention trade);
//! * **e2e decomposition** — mean queue / prefill / decode split, and the
//!   service-time split into weight-stream, own K/V and head-of-line
//!   (batch-mates' K/V) cycles;
//! * **worst-burn ranking** — the top-N requests by deadline-budget burn,
//!   the first places to look when an SLO is at risk.
//!
//! The audit *re-verifies* the timeline against the models it claims to
//! reflect rather than trusting it: every request's decomposition must
//! sum exactly to its recorded e2e latency
//! (`decomposition_consistent`), every attended count must equal what
//! the retention window selector (`ceil(retention · t)`, clamped to
//! `[1, t]`, per layer × head) would attend (`ladder_consistent`), and
//! the terminal records must be exactly-once and shape-consistent —
//! unique ids, one per offered request, a valid reason, no tokens on a
//! failed/expired/rejected exit, at least one on a served exit — even
//! when fault-injection retries re-admitted requests mid-run
//! (`terminals_consistent`). A false flag means the engine and its
//! telemetry have drifted apart, which is precisely what an
//! observability layer must never hide.
//!
//! Output is deterministic: derived purely from the (byte-deterministic)
//! timeline document, serialized in canonical key order with [`fmt_f64`],
//! so audits diff clean via `dota report diff`.

use dota_metrics::fmt_f64;
use serde_json::Value;

/// Audit format version (bump on any schema change).
pub const SERVE_AUDIT_VERSION: u32 = 2;

/// Cycles per microsecond on the simulated 1 GHz clock.
const CYCLES_PER_US: f64 = 1e3;

/// Per-retention-tier aggregate of one cell.
#[derive(Debug)]
pub struct TierStat {
    /// Ladder rung index.
    pub level: usize,
    /// Retention at this rung.
    pub retention: f64,
    /// Requests admitted at this rung (never-admitted requests are
    /// excluded — they attended nothing by waiting, not by degradation).
    pub requests: u64,
    /// Of those, requests that produced their full output.
    pub served: u64,
    /// Attended positions, summed over requests, steps, layers and heads.
    pub attended: u64,
    /// Dense-attention positions the same steps would have touched.
    pub possible: u64,
    /// Mean per-step fraction of positions *omitted* (`1 − attended /
    /// possible`); 0 at full retention, approaching `1 − retention` as
    /// contexts grow past the ceil-rounding regime.
    pub reduction: f64,
    /// Mean phase split, microseconds: queue, prefill, decode.
    pub mean_queue_us: f64,
    /// Mean prefill phase, microseconds.
    pub mean_prefill_us: f64,
    /// Mean decode phase, microseconds.
    pub mean_decode_us: f64,
    /// Mean weight-stream share of service, microseconds.
    pub mean_weight_us: f64,
    /// Mean own-K/V share of service, microseconds.
    pub mean_kv_us: f64,
    /// Mean head-of-line share of service, microseconds.
    pub mean_hol_us: f64,
}

/// One row of the worst-burn ranking.
#[derive(Debug)]
pub struct WorstBurn {
    /// Request id.
    pub id: u64,
    /// Terminal reason.
    pub reason: String,
    /// Retention the request ran at.
    pub retention: f64,
    /// Fraction of the deadline budget consumed.
    pub burn: f64,
    /// End-to-end latency, microseconds.
    pub e2e_us: f64,
    /// Queue share, microseconds.
    pub queue_us: f64,
    /// Prefill share, microseconds.
    pub prefill_us: f64,
    /// Decode share, microseconds.
    pub decode_us: f64,
}

/// Closed-loop controller activity of one cell, mirrored from the
/// timeline's `control` object (emitted for `slo` shed cells only).
#[derive(Debug)]
pub struct ControlAudit {
    /// Retention-rung transitions over the run.
    pub changes: u64,
    /// Steps the admission gate spent closed.
    pub gated_steps: u64,
    /// Rung the controller ended the run on.
    pub final_level: u64,
    /// Deepest rung reached.
    pub max_level: u64,
    /// Mean rung across steps.
    pub mean_level: f64,
}

/// Audit of one (shed policy, load) cell.
#[derive(Debug)]
pub struct CellAudit {
    /// Shed policy name.
    pub shed: String,
    /// Offered load multiple.
    pub load: f64,
    /// Requests in the cell's timeline.
    pub requests: u64,
    /// Requests never admitted (expired or rejected in the queue).
    pub never_admitted: u64,
    /// Per-rung aggregates, rung order (only rungs with admissions).
    pub tiers: Vec<TierStat>,
    /// Every request's `queue + prefill + decode` summed exactly to its
    /// e2e, and `weight + kv + head_of_line` to its service time.
    pub decomposition_consistent: bool,
    /// Every request's attended count matched the retention window
    /// (`Σ layers·heads·clamp(ceil(r·t), 1, t)` over its steps).
    pub ladder_consistent: bool,
    /// Terminal records were exactly-once and shape-consistent: unique
    /// ids, one per offered request, a valid reason, zero tokens on
    /// failed/expired/rejected exits and at least one on served exits.
    pub terminals_consistent: bool,
    /// Requests that went through at least one fault retry.
    pub retried: u64,
    /// Requests that terminated `failed` (fault retries exhausted).
    pub failed: u64,
    /// Tokens emitted by attempts a fault later aborted (discarded, never
    /// delivered — retries restart the stream from scratch).
    pub discarded_tokens: u64,
    /// Controller activity, present only when the timeline cell carried a
    /// `control` object (closed-loop `slo` cells).
    pub control: Option<ControlAudit>,
    /// Top-N requests by burn, descending (ties by id).
    pub worst: Vec<WorstBurn>,
}

/// The full audit document.
#[derive(Debug)]
pub struct ServeAudit {
    /// One audit per timeline cell, in document order.
    pub cells: Vec<CellAudit>,
}

fn as_u64(v: &Value, what: &str) -> Result<u64, String> {
    match v {
        Value::UInt(u) => Ok(*u),
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        _ => Err(format!(
            "timeline field `{what}` is not an unsigned integer"
        )),
    }
}

fn as_f64(v: &Value, what: &str) -> Result<f64, String> {
    match v {
        Value::Float(f) => Ok(*f),
        Value::Int(i) => Ok(*i as f64),
        Value::UInt(u) => Ok(*u as f64),
        _ => Err(format!("timeline field `{what}` is not a number")),
    }
}

fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, String> {
    v.get(name)
        .ok_or_else(|| format!("timeline is missing field `{name}`"))
}

fn u64_field(v: &Value, name: &str) -> Result<u64, String> {
    as_u64(field(v, name)?, name)
}

fn f64_field(v: &Value, name: &str) -> Result<f64, String> {
    as_f64(field(v, name)?, name)
}

fn str_field(v: &Value, name: &str) -> Result<String, String> {
    match field(v, name)? {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(format!("timeline field `{name}` is not a string")),
    }
}

fn array<'a>(v: &'a Value, name: &str) -> Result<&'a [Value], String> {
    match field(v, name)? {
        Value::Array(xs) => Ok(xs),
        _ => Err(format!("timeline field `{name}` is not an array")),
    }
}

/// Positions the retention window attends over a context of `t` cached
/// positions, per layer and head: `ceil(r·t)` clamped to `[1, t]`
/// (mirrors `dota_serve::WindowSelector`; dense retention attends all).
fn window_size(retention: f64, t: u64) -> u64 {
    if retention >= 1.0 {
        return t;
    }
    (((retention * t as f64).ceil() as u64).max(1)).min(t)
}

struct ParsedRequest {
    id: u64,
    reason: String,
    retention: f64,
    level: usize,
    admitted: bool,
    served: bool,
    tokens: u64,
    retries: u64,
    discarded_tokens: u64,
    attended: u64,
    possible: u64,
    burn: f64,
    e2e: u64,
    queue: u64,
    prefill: u64,
    decode: u64,
    weight: u64,
    kv: u64,
    hol: u64,
    decomposition_ok: bool,
    ladder_ok: bool,
}

fn parse_request(r: &Value, layers_heads: u64) -> Result<ParsedRequest, String> {
    let id = u64_field(r, "id")?;
    let reason = str_field(r, "reason")?;
    let retention = f64_field(r, "retention")?;
    let level = u64_field(r, "level")? as usize;
    let admitted = !matches!(field(r, "admit")?, Value::Null);
    let arrival = u64_field(r, "arrival")?;
    let finish = u64_field(r, "finish")?;
    let attended = u64_field(r, "attended")?;
    let omitted = u64_field(r, "omitted")?;
    let queue = u64_field(r, "queue_cycles")?;
    let prefill = u64_field(r, "prefill_cycles")?;
    let decode = u64_field(r, "decode_cycles")?;
    let weight = u64_field(r, "weight_cycles")?;
    let kv = u64_field(r, "kv_cycles")?;
    let hol = u64_field(r, "hol_cycles")?;
    let e2e = finish
        .checked_sub(arrival)
        .ok_or_else(|| format!("request {id} finishes before it arrives"))?;

    // Identity 1: the recorded phases tile the recorded residence, and the
    // service split tiles the in-slot time, cycle for cycle.
    let decomposition_ok = queue + prefill + decode == e2e && weight + kv + hol == prefill + decode;

    // Identity 2: the attended counts are exactly what the retention
    // window would attend over the recorded per-step contexts.
    let mut expected_attended = 0u64;
    let mut total_steps_ok = true;
    let mut step_sum = 0u64;
    for (i, step) in array(r, "steps")?.iter().enumerate() {
        let Value::Array(cols) = step else {
            return Err(format!("request {id} step {i} is not an array"));
        };
        if cols.len() != 7 {
            return Err(format!("request {id} step {i} has {} columns", cols.len()));
        }
        let step_attended = as_u64(&cols[4], "step attended")?;
        let context = as_u64(&cols[6], "step context")?;
        expected_attended += layers_heads * window_size(retention, context);
        step_sum += step_attended;
        if as_u64(&cols[4], "attended")? + as_u64(&cols[5], "omitted")? != layers_heads * context {
            total_steps_ok = false;
        }
    }
    let ladder_ok = total_steps_ok && step_sum == attended && expected_attended == attended;

    let served = reason == "completed" || reason == "eos";
    // Fault-retry fields are emitted only when nonzero, so fault-free
    // timelines keep their exact bytes; absence means zero.
    let opt_u64 = |name: &str| r.get(name).map(|v| as_u64(v, name)).transpose();
    Ok(ParsedRequest {
        id,
        reason,
        retention,
        level,
        admitted,
        served,
        tokens: u64_field(r, "tokens")?,
        retries: opt_u64("retries")?.unwrap_or(0),
        discarded_tokens: opt_u64("discarded_tokens")?.unwrap_or(0),
        attended,
        possible: attended + omitted,
        burn: f64_field(r, "burn")?,
        e2e,
        queue,
        prefill,
        decode,
        weight,
        kv,
        hol,
        decomposition_ok,
        ladder_ok,
    })
}

/// Audits a parsed timeline document.
///
/// # Errors
///
/// Describes the first structural problem in the document.
pub fn audit(doc: &Value, top: usize) -> Result<ServeAudit, String> {
    let config = field(doc, "config")?;
    let layers_heads = u64_field(config, "n_layers")? * u64_field(config, "n_heads")?;
    let ladder: Vec<f64> = array(config, "ladder")?
        .iter()
        .map(|v| as_f64(v, "ladder entry"))
        .collect::<Result<_, _>>()?;
    let offered = u64_field(config, "requests")?;
    let mut cells = Vec::new();
    for cell in array(doc, "cells")? {
        let shed = str_field(cell, "shed")?;
        let load = f64_field(cell, "load")?;
        // Emitted only for closed-loop cells; absence means no controller.
        let control = cell
            .get("control")
            .map(|v| -> Result<ControlAudit, String> {
                Ok(ControlAudit {
                    changes: u64_field(v, "changes")?,
                    gated_steps: u64_field(v, "gated_steps")?,
                    final_level: u64_field(v, "final_level")?,
                    max_level: u64_field(v, "max_level")?,
                    mean_level: f64_field(v, "mean_level")?,
                })
            })
            .transpose()?;
        let requests: Vec<ParsedRequest> = array(cell, "requests")?
            .iter()
            .map(|r| parse_request(r, layers_heads))
            .collect::<Result<_, _>>()?;

        // Identity 3: exactly-once, shape-consistent terminals. Holds even
        // under fault-injection retries: a retried request still terminates
        // once, and its token count reflects only the surviving attempt.
        let mut ids: Vec<u64> = requests.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        let shapes_ok = requests.iter().all(|r| match r.reason.as_str() {
            "completed" | "eos" => r.admitted && r.tokens >= 1,
            "deadline_evicted" => r.admitted,
            "queue_expired" | "rejected" => !r.admitted && r.tokens == 0,
            // A failed request delivered nothing, whether it died in a
            // slot (admitted) or waiting out a retry backoff (not).
            "failed" => r.tokens == 0,
            _ => false,
        });
        let terminals_consistent =
            ids.len() == requests.len() && requests.len() as u64 == offered && shapes_ok;

        let mut tiers = Vec::new();
        for (level, &retention) in ladder.iter().enumerate() {
            let members: Vec<&ParsedRequest> = requests
                .iter()
                .filter(|r| r.admitted && r.level == level)
                .collect();
            if members.is_empty() {
                continue;
            }
            let n = members.len() as f64;
            let attended: u64 = members.iter().map(|r| r.attended).sum();
            let possible: u64 = members.iter().map(|r| r.possible).sum();
            let mean_us = |f: &dyn Fn(&ParsedRequest) -> u64| {
                members.iter().map(|r| f(r) as f64).sum::<f64>() / n / CYCLES_PER_US
            };
            tiers.push(TierStat {
                level,
                retention,
                requests: members.len() as u64,
                served: members.iter().filter(|r| r.served).count() as u64,
                attended,
                possible,
                reduction: if possible == 0 {
                    0.0
                } else {
                    1.0 - attended as f64 / possible as f64
                },
                mean_queue_us: mean_us(&|r| r.queue),
                mean_prefill_us: mean_us(&|r| r.prefill),
                mean_decode_us: mean_us(&|r| r.decode),
                mean_weight_us: mean_us(&|r| r.weight),
                mean_kv_us: mean_us(&|r| r.kv),
                mean_hol_us: mean_us(&|r| r.hol),
            });
        }

        let mut ranked: Vec<&ParsedRequest> = requests.iter().collect();
        ranked.sort_by(|a, b| {
            b.burn
                .partial_cmp(&a.burn)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        let worst = ranked
            .iter()
            .take(top)
            .map(|r| WorstBurn {
                id: r.id,
                reason: r.reason.clone(),
                retention: r.retention,
                burn: r.burn,
                e2e_us: r.e2e as f64 / CYCLES_PER_US,
                queue_us: r.queue as f64 / CYCLES_PER_US,
                prefill_us: r.prefill as f64 / CYCLES_PER_US,
                decode_us: r.decode as f64 / CYCLES_PER_US,
            })
            .collect();

        cells.push(CellAudit {
            shed,
            load,
            requests: requests.len() as u64,
            never_admitted: requests.iter().filter(|r| !r.admitted).count() as u64,
            decomposition_consistent: requests.iter().all(|r| r.decomposition_ok),
            ladder_consistent: requests.iter().all(|r| r.ladder_ok),
            terminals_consistent,
            retried: requests.iter().filter(|r| r.retries > 0).count() as u64,
            failed: requests.iter().filter(|r| r.reason == "failed").count() as u64,
            discarded_tokens: requests.iter().map(|r| r.discarded_tokens).sum(),
            control,
            tiers,
            worst,
        });
    }
    Ok(ServeAudit { cells })
}

impl ServeAudit {
    /// Canonical JSON serialization (stable key order, [`fmt_f64`]
    /// numbers; byte-deterministic, diffable via `dota report diff`).
    pub fn to_json(&self) -> String {
        let mut s =
            format!("{{\"version\":\"dota-serve-audit-v{SERVE_AUDIT_VERSION}\",\"cells\":[");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"shed\":\"{}\",\"load\":{},\"requests\":{},\"never_admitted\":{}",
                c.shed,
                fmt_f64(c.load),
                c.requests,
                c.never_admitted
            ));
            s.push_str(&format!(
                ",\"decomposition_consistent\":{},\"ladder_consistent\":{},\"terminals_consistent\":{}",
                c.decomposition_consistent, c.ladder_consistent, c.terminals_consistent
            ));
            s.push_str(&format!(
                ",\"retried\":{},\"failed\":{},\"discarded_tokens\":{}",
                c.retried, c.failed, c.discarded_tokens
            ));
            // Conditional, so audits of controller-free timelines (all
            // committed baselines) keep their exact bytes.
            if let Some(ctl) = &c.control {
                s.push_str(&format!(
                    ",\"control\":{{\"changes\":{},\"gated_steps\":{},\"final_level\":{},\"max_level\":{},\"mean_level\":{}}}",
                    ctl.changes,
                    ctl.gated_steps,
                    ctl.final_level,
                    ctl.max_level,
                    fmt_f64(ctl.mean_level)
                ));
            }
            s.push_str(",\"tiers\":[");
            for (j, t) in c.tiers.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"level\":{},\"retention\":{},\"requests\":{},\"served\":{},\"attended\":{},\"possible\":{},\"reduction\":{}",
                    t.level,
                    fmt_f64(t.retention),
                    t.requests,
                    t.served,
                    t.attended,
                    t.possible,
                    fmt_f64(t.reduction)
                ));
                s.push_str(&format!(
                    ",\"mean_queue_us\":{},\"mean_prefill_us\":{},\"mean_decode_us\":{},\"mean_weight_us\":{},\"mean_kv_us\":{},\"mean_hol_us\":{}}}",
                    fmt_f64(t.mean_queue_us),
                    fmt_f64(t.mean_prefill_us),
                    fmt_f64(t.mean_decode_us),
                    fmt_f64(t.mean_weight_us),
                    fmt_f64(t.mean_kv_us),
                    fmt_f64(t.mean_hol_us)
                ));
            }
            s.push_str("],\"worst_burn\":[");
            for (j, w) in c.worst.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"id\":{},\"reason\":\"{}\",\"retention\":{},\"burn\":{},\"e2e_us\":{},\"queue_us\":{},\"prefill_us\":{},\"decode_us\":{}}}",
                    w.id,
                    w.reason,
                    fmt_f64(w.retention),
                    fmt_f64(w.burn),
                    fmt_f64(w.e2e_us),
                    fmt_f64(w.queue_us),
                    fmt_f64(w.prefill_us),
                    fmt_f64(w.decode_us)
                ));
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s.push('\n');
        s
    }

    /// Renders the human-readable audit tables.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&format!(
                "cell {} @ {}x: {} requests, {} never admitted, decomposition {}, ladder {}, terminals {}\n",
                c.shed,
                fmt_f64(c.load),
                c.requests,
                c.never_admitted,
                if c.decomposition_consistent {
                    "ok"
                } else {
                    "INCONSISTENT"
                },
                if c.ladder_consistent {
                    "ok"
                } else {
                    "INCONSISTENT"
                },
                if c.terminals_consistent {
                    "ok"
                } else {
                    "INCONSISTENT"
                },
            ));
            if c.retried > 0 || c.failed > 0 {
                out.push_str(&format!(
                    "  faults: {} retried, {} failed, {} tokens discarded across aborted attempts\n",
                    c.retried, c.failed, c.discarded_tokens
                ));
            }
            if let Some(ctl) = &c.control {
                out.push_str(&format!(
                    "  control: {} rung changes, {} gated steps, final rung {}, max rung {}, mean rung {:.2}\n",
                    ctl.changes, ctl.gated_steps, ctl.final_level, ctl.max_level, ctl.mean_level
                ));
            }
            out.push_str(&format!(
                "  {:>5} {:>9} {:>8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                "tier",
                "retention",
                "requests",
                "served",
                "omitted%",
                "queue",
                "prefill",
                "decode",
                "kv",
                "hol"
            ));
            for t in &c.tiers {
                out.push_str(&format!(
                    "  {:>5} {:>8.1}% {:>8} {:>7} {:>8.1}% {:>8.1}u {:>8.1}u {:>8.1}u {:>8.1}u {:>8.1}u\n",
                    t.level,
                    t.retention * 100.0,
                    t.requests,
                    t.served,
                    t.reduction * 100.0,
                    t.mean_queue_us,
                    t.mean_prefill_us,
                    t.mean_decode_us,
                    t.mean_kv_us,
                    t.mean_hol_us
                ));
            }
            if !c.worst.is_empty() {
                out.push_str(&format!(
                    "  worst burn: {:>6} {:>16} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
                    "id", "reason", "retention", "burn", "e2e", "queue", "prefill", "decode"
                ));
                for w in &c.worst {
                    out.push_str(&format!(
                        "  {:>17} {:>16} {:>8.1}% {:>8.2} {:>8.1}u {:>8.1}u {:>8.1}u {:>8.1}u\n",
                        w.id,
                        w.reason,
                        w.retention * 100.0,
                        w.burn,
                        w.e2e_us,
                        w.queue_us,
                        w.prefill_us,
                        w.decode_us
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> Value {
        serde_json::parse(SAMPLE_JSON).unwrap()
    }

    // Two-layer × two-head model; one request at retention 0.5, one
    // dense, one never admitted.
    const SAMPLE_JSON: &str = r#"{
          "version":1,
          "config":{"seed":7,"requests":3,"capacity":2,"queue_capacity":4,
                    "seq":48,"vocab":16,"n_layers":2,"n_heads":2,"slo_window":8,
                    "ladder":[1.0,0.5],
                    "interactive_deadline_us":50.0,"batch_deadline_us":500.0},
          "cells":[{"shed":"retention","load":4.0,"slo_windows":[],
            "requests":[
              {"id":0,"class":"interactive","reason":"completed","retention":1.0,
               "level":0,"lane":0,"arrival":0,"deadline":50000,"admit":0,
               "first_token":100,"finish":220,"tokens":2,
               "attended":12,"omitted":0,
               "queue_cycles":0,"prefill_cycles":100,"decode_cycles":120,
               "weight_cycles":120,"kv_cycles":40,"hol_cycles":60,"burn":0.0044,
               "steps":[[0,100,60,20,4,0,1],[100,120,60,20,8,0,2]]},
              {"id":1,"class":"batch","reason":"completed","retention":0.5,
               "level":1,"lane":1,"arrival":10,"deadline":500010,"admit":20,
               "first_token":120,"finish":240,"tokens":2,
               "attended":12,"omitted":8,
               "queue_cycles":10,"prefill_cycles":100,"decode_cycles":120,
               "weight_cycles":120,"kv_cycles":40,"hol_cycles":60,"burn":0.00046,
               "steps":[[20,100,60,20,4,0,1],[120,120,60,20,8,8,4]]},
              {"id":2,"class":"interactive","reason":"queue_expired","retention":1.0,
               "level":0,"lane":null,"arrival":5,"deadline":50005,"admit":null,
               "first_token":null,"finish":50005,"tokens":0,
               "attended":0,"omitted":0,
               "queue_cycles":50000,"prefill_cycles":0,"decode_cycles":0,
               "weight_cycles":0,"kv_cycles":0,"hol_cycles":0,"burn":1.0,
               "steps":[]}
            ]}]
        }"#;

    #[test]
    fn audit_verifies_identities_and_tiers() {
        let audit = audit(&sample_doc(), 2).unwrap();
        assert_eq!(audit.cells.len(), 1);
        let c = &audit.cells[0];
        assert!(c.decomposition_consistent);
        assert!(c.ladder_consistent, "sample attends exactly the window");
        assert_eq!(c.requests, 3);
        assert_eq!(c.never_admitted, 1);
        assert_eq!(c.tiers.len(), 2);
        assert_eq!(c.tiers[0].retention, 1.0);
        assert_eq!(c.tiers[0].reduction, 0.0);
        let half = &c.tiers[1];
        assert_eq!(half.requests, 1);
        assert_eq!(half.attended, 12);
        assert_eq!(half.possible, 20);
        assert!((half.reduction - 0.4).abs() < 1e-12);
        // Worst burn leads with the expired request.
        assert_eq!(c.worst[0].id, 2);
        assert_eq!(c.worst[0].burn, 1.0);
        // Fault-free sample: terminals are exactly-once and clean.
        assert!(c.terminals_consistent);
        assert_eq!(c.retried, 0);
        assert_eq!(c.failed, 0);
        assert_eq!(c.discarded_tokens, 0);
    }

    #[test]
    fn audit_flags_duplicate_and_bogus_terminals() {
        // Duplicate id: the same request terminated twice.
        let dup = SAMPLE_JSON.replacen("\"id\":1,", "\"id\":0,", 1);
        assert_ne!(dup, SAMPLE_JSON, "corruption target must exist");
        let a = audit(&serde_json::parse(&dup).unwrap(), 2).unwrap();
        assert!(!a.cells[0].terminals_consistent);
        // Unknown terminal reason.
        let bogus = SAMPLE_JSON.replacen("\"reason\":\"completed\"", "\"reason\":\"vanished\"", 1);
        assert_ne!(bogus, SAMPLE_JSON, "corruption target must exist");
        let a = audit(&serde_json::parse(&bogus).unwrap(), 2).unwrap();
        assert!(!a.cells[0].terminals_consistent);
        // A served request claiming zero tokens.
        let empty = SAMPLE_JSON.replacen(
            "\"finish\":220,\"tokens\":2",
            "\"finish\":220,\"tokens\":0",
            1,
        );
        assert_ne!(empty, SAMPLE_JSON, "corruption target must exist");
        let a = audit(&serde_json::parse(&empty).unwrap(), 2).unwrap();
        assert!(!a.cells[0].terminals_consistent);
    }

    #[test]
    fn audit_reads_fault_retry_fields() {
        // Splice retry fields into request 1, the way the recorder emits
        // them (only when nonzero), and fail request 2 typed.
        let faulted = SAMPLE_JSON
            .replacen(
                "\"burn\":0.00046,",
                "\"burn\":0.00046,\"retries\":2,\"discarded_tokens\":3,",
                1,
            )
            .replacen("\"reason\":\"queue_expired\"", "\"reason\":\"failed\"", 1);
        let a = audit(&serde_json::parse(&faulted).unwrap(), 2).unwrap();
        let c = &a.cells[0];
        assert!(
            c.terminals_consistent,
            "retried + failed terminals are legal"
        );
        assert_eq!(c.retried, 1);
        assert_eq!(c.failed, 1);
        assert_eq!(c.discarded_tokens, 3);
        assert!(a.to_json().contains("\"retried\":1"));
        assert!(a.render_text().contains("1 retried, 1 failed"));
    }

    #[test]
    fn audit_surfaces_the_control_summary_when_present() {
        // The fault-free sample carries no controller: the key must stay
        // absent so controller-free audit baselines keep their bytes.
        let plain = audit(&sample_doc(), 2).unwrap();
        assert!(plain.cells[0].control.is_none());
        assert!(!plain.to_json().contains("\"control\""));
        assert!(!plain.render_text().contains("control:"));
        // Splice a control object in, the way the timeline emits it for
        // closed-loop slo cells (between slo_windows and requests).
        let looped = SAMPLE_JSON.replacen(
            "\"slo_windows\":[],",
            "\"slo_windows\":[],\"control\":{\"changes\":3,\"gated_steps\":5,\
             \"final_level\":1,\"max_level\":2,\"mean_level\":0.75},",
            1,
        );
        assert_ne!(looped, SAMPLE_JSON, "splice target must exist");
        let a = audit(&serde_json::parse(&looped).unwrap(), 2).unwrap();
        let ctl = a.cells[0].control.as_ref().expect("control parsed");
        assert_eq!(ctl.changes, 3);
        assert_eq!(ctl.gated_steps, 5);
        assert_eq!(ctl.final_level, 1);
        assert_eq!(ctl.max_level, 2);
        assert_eq!(ctl.mean_level, 0.75);
        assert!(a.to_json().contains(
            "\"control\":{\"changes\":3,\"gated_steps\":5,\"final_level\":1,\
             \"max_level\":2,\"mean_level\":0.75}"
        ));
        assert!(a.render_text().contains(
            "control: 3 rung changes, 5 gated steps, final rung 1, max rung 2, mean rung 0.75"
        ));
        // A malformed control object is a structural error, not ignored.
        let broken = SAMPLE_JSON.replacen(
            "\"slo_windows\":[],",
            "\"slo_windows\":[],\"control\":{\"changes\":3},",
            1,
        );
        assert!(audit(&serde_json::parse(&broken).unwrap(), 2).is_err());
    }

    #[test]
    fn audit_flags_inconsistent_attended_counts() {
        // Corrupt one step's attended count: ladder check must trip while
        // the cycle decomposition stays intact.
        let corrupted = SAMPLE_JSON.replacen("[0,100,60,20,4,0,1]", "[0,100,60,20,3,1,1]", 1);
        assert_ne!(corrupted, SAMPLE_JSON, "corruption target must exist");
        let doc = serde_json::parse(&corrupted).unwrap();
        let audit = audit(&doc, 2).unwrap();
        assert!(!audit.cells[0].ladder_consistent);
        assert!(audit.cells[0].decomposition_consistent);
    }

    #[test]
    fn audit_flags_broken_decomposition() {
        let corrupted = SAMPLE_JSON.replacen("\"queue_cycles\":10,", "\"queue_cycles\":11,", 1);
        assert_ne!(corrupted, SAMPLE_JSON, "corruption target must exist");
        let doc = serde_json::parse(&corrupted).unwrap();
        let audit = audit(&doc, 2).unwrap();
        assert!(!audit.cells[0].decomposition_consistent);
    }

    #[test]
    fn json_and_text_are_deterministic() {
        let a = audit(&sample_doc(), 2).unwrap();
        let b = audit(&sample_doc(), 2).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render_text(), b.render_text());
        assert!(a.to_json().contains("\"ladder_consistent\":true"));
        assert!(a.render_text().contains("worst burn"));
        assert!(serde_json::parse(&a.to_json()).is_ok());
    }

    #[test]
    fn window_size_matches_selector_semantics() {
        assert_eq!(window_size(1.0, 5), 5);
        assert_eq!(window_size(0.5, 5), 3); // ceil(2.5)
        assert_eq!(window_size(0.125, 1), 1); // clamp to at least 1
        assert_eq!(window_size(0.125, 8), 1);
        assert_eq!(window_size(0.125, 9), 2); // ceil(1.125)
    }

    #[test]
    fn malformed_documents_are_rejected() {
        let doc = serde_json::parse("{\"cells\":[]}").unwrap();
        assert!(audit(&doc, 2).is_err()); // missing config
        let doc = serde_json::parse("{\"config\":{\"n_layers\":2},\"cells\":[]}").unwrap();
        assert!(audit(&doc, 2).is_err()); // missing n_heads
    }
}
