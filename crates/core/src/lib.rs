//! DOTA: Detect and Omit Weak Attentions — end-to-end reproduction API.
//!
//! This crate is the front door of the workspace: it wires the Transformer
//! (`dota-transformer`), the learned attention detector (`dota-detector`),
//! the synthetic benchmarks (`dota-workloads`) and the accelerator
//! simulator (`dota-accel`) into the experiment pipelines of the paper's
//! evaluation (§5):
//!
//! * [`experiments`] — train a model on a benchmark, jointly optimize the
//!   detector with it (Eq. 6), and evaluate accuracy/perplexity at a given
//!   retention for DOTA and every baseline (dense, oracle, ELSA, A3,
//!   random) — the Figure 11 / Table 1 pipeline;
//! * [`presets`] — the DOTA-F/C/A operating points and the paper-scale
//!   model shape of each benchmark;
//! * [`DotaSystem`] — the simulated-hardware side: latency, energy and
//!   speedup comparisons against the GPU and ELSA baselines — the
//!   Figure 12 / Figure 13 pipeline.
//!
//! # Quickstart
//!
//! ```
//! use dota_core::{DotaSystem, presets::OperatingPoint};
//! use dota_workloads::Benchmark;
//!
//! let system = DotaSystem::paper_default();
//! let row = system.speedup_row(Benchmark::Text, OperatingPoint::Conservative);
//! assert!(row.attention_vs_gpu > 1.0);
//! ```

#![deny(missing_docs)]

pub mod analyze;
pub mod campaign;
pub mod checkpoint;
pub mod compress;
pub mod experiments;
pub mod presets;
pub mod report;
pub mod serve_audit;
mod system;
pub mod watchdog;

pub use system::{DotaSystem, EnergyRow, SpeedupRow};
