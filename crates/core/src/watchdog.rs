//! Divergence watchdog: crash-safe training with rollback and lr backoff.
//!
//! Training tiny post-layer-norm Transformers (and, at scale, any model)
//! can diverge: a bad step sends the loss to NaN/Inf or the gradients
//! through the roof, after which every later step is garbage. The guarded
//! trainer here treats each epoch as an independent optimizer episode
//! bounded by a checkpoint:
//!
//! 1. snapshot the parameters, run one epoch;
//! 2. if the epoch diverged — non-finite mean loss, non-finite parameter,
//!    gradient-norm explosion, loss explosion relative to the best epoch,
//!    or an injected `train.loss` fault — roll the parameters back to the
//!    snapshot, back off the learning rate and retry (bounded);
//! 3. if the retries run out, surface a typed [`TrainError::Diverged`];
//! 4. after each good epoch, write a crash-safe checkpoint (temp file +
//!    atomic rename, bit-exact values) when a path is configured.
//!
//! Because every episode starts from a bit-exact parameter state with a
//! fresh optimizer, interrupting a guarded run after epoch `k` and
//! resuming from its checkpoint replays exactly the epochs an
//! uninterrupted run would have executed: the resumed final loss is
//! identical (the crash-resume integration test pins this at tolerance
//! zero). The trade-off is that Adam moments and lr warmup do not carry
//! across epochs; [`TrainOptions::lr_warmup_steps`] is ignored here.

use crate::checkpoint::{self, CheckpointError};
use crate::experiments::{train_dense_logged, TrainOptions};
use dota_autograd::ParamSet;
use dota_faults::FaultSite;
use dota_metrics::MetricsSink;
use dota_transformer::Model;
use dota_workloads::Dataset;
use std::fmt;
use std::path::PathBuf;

/// Watchdog policy for [`train_dense_guarded`].
#[derive(Debug, Clone)]
pub struct WatchdogOptions {
    /// Consecutive rollback retries allowed for one epoch before the run
    /// is declared diverged.
    pub max_retries: usize,
    /// Learning-rate multiplier applied on every rollback (e.g. `0.5`).
    pub lr_backoff: f32,
    /// An epoch whose mean loss exceeds `best_loss * loss_explosion_factor`
    /// counts as diverged (0 disables the check).
    pub loss_explosion_factor: f32,
    /// A raw (pre-clip) gradient norm above this during the epoch counts
    /// as diverged (non-finite disables the check).
    pub max_grad_norm: f64,
    /// Crash-safe checkpoint written after every good epoch.
    pub checkpoint_path: Option<PathBuf>,
}

impl Default for WatchdogOptions {
    fn default() -> Self {
        Self {
            max_retries: 3,
            lr_backoff: 0.5,
            loss_explosion_factor: 25.0,
            max_grad_norm: 1e4,
            checkpoint_path: None,
        }
    }
}

/// Typed errors from guarded training.
#[derive(Debug)]
pub enum TrainError {
    /// An epoch kept diverging after every rollback retry.
    Diverged {
        /// Epoch (0-based) that could not complete.
        epoch: usize,
        /// Rollback retries spent on it.
        retries: usize,
        /// Why the final attempt was rejected.
        reason: String,
    },
    /// Writing the post-epoch checkpoint failed.
    Checkpoint(CheckpointError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Diverged {
                epoch,
                retries,
                reason,
            } => write!(
                f,
                "training diverged at epoch {epoch} after {retries} rollback retries ({reason})"
            ),
            TrainError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// Outcome of a completed guarded run.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedTraining {
    /// Mean loss of every *accepted* epoch.
    pub losses: Vec<f32>,
    /// Total rollbacks performed across the run.
    pub rollbacks: usize,
    /// Learning rate in effect after the final epoch (reflects backoff).
    pub final_lr: f32,
}

/// Dense training wrapped in the divergence watchdog (see the module docs
/// for the episode/rollback/checkpoint protocol). Inside a [`dota_faults`]
/// session, site `train.loss` deterministically marks epochs as diverged
/// to exercise the rollback path.
///
/// # Errors
///
/// [`TrainError::Diverged`] when an epoch exhausts its rollback retries;
/// [`TrainError::Checkpoint`] when the post-epoch checkpoint cannot be
/// written.
pub fn train_dense_guarded(
    model: &Model,
    params: &mut ParamSet,
    data: &Dataset,
    opts: &TrainOptions,
    wd: &WatchdogOptions,
) -> Result<GuardedTraining, TrainError> {
    let mut losses = Vec::with_capacity(opts.epochs);
    let mut rollbacks = 0usize;
    let mut lr = opts.lr;
    let mut best_loss = f32::INFINITY;
    let mut epoch = 0usize;
    while epoch < opts.epochs {
        let mut retries = 0usize;
        let mean = loop {
            let snapshot = params.clone();
            let episode = TrainOptions {
                epochs: 1,
                lr,
                lr_warmup_steps: 0,
                // The watchdog applies early stop itself, below.
                early_stop_loss: f32::NEG_INFINITY,
                ..*opts
            };
            let mut sink = MetricsSink::new();
            let epoch_losses = train_dense_logged(model, params, data, &episode, &mut sink);
            let mean = epoch_losses.first().copied().unwrap_or(0.0);
            match epoch_verdict(params, mean, best_loss, wd, &sink, epoch, retries) {
                None => break mean,
                Some(reason) => {
                    *params = snapshot;
                    dota_faults::record("faults.train.rollbacks", 1);
                    dota_trace::count("faults.train.rollbacks", 1);
                    rollbacks += 1;
                    retries += 1;
                    lr *= wd.lr_backoff;
                    if retries > wd.max_retries {
                        return Err(TrainError::Diverged {
                            epoch,
                            retries: retries - 1,
                            reason,
                        });
                    }
                }
            }
        };
        best_loss = best_loss.min(mean);
        losses.push(mean);
        if let Some(path) = &wd.checkpoint_path {
            checkpoint::save_params(params, path)?;
        }
        if mean < opts.early_stop_loss {
            break;
        }
        epoch += 1;
    }
    Ok(GuardedTraining {
        losses,
        rollbacks,
        final_lr: lr,
    })
}

/// Why an epoch must be rolled back, or `None` if it is good.
fn epoch_verdict(
    params: &ParamSet,
    mean_loss: f32,
    best_loss: f32,
    wd: &WatchdogOptions,
    sink: &MetricsSink,
    epoch: usize,
    attempt: usize,
) -> Option<String> {
    if dota_faults::enabled()
        && dota_faults::should_inject(FaultSite::TrainLoss, &[epoch as u64, attempt as u64])
    {
        return Some("injected train.loss fault".to_owned());
    }
    if !mean_loss.is_finite() {
        return Some(format!("non-finite epoch loss {mean_loss}"));
    }
    if wd.loss_explosion_factor > 0.0
        && best_loss.is_finite()
        && mean_loss > best_loss * wd.loss_explosion_factor
    {
        return Some(format!(
            "loss exploded to {mean_loss} (best epoch {best_loss})"
        ));
    }
    if wd.max_grad_norm.is_finite() {
        let worst = sink
            .series("dense.grad_norm")
            .into_iter()
            .map(|(_, v)| v)
            .fold(0.0_f64, f64::max);
        if !worst.is_finite() || worst > wd.max_grad_norm {
            return Some(format!("gradient norm exploded to {worst}"));
        }
    }
    for id in params.ids() {
        if params.value(id).as_slice().iter().any(|v| !v.is_finite()) {
            return Some(format!("parameter `{}` went non-finite", params.name(id)));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::build_model;
    use dota_faults::FaultPlan;
    use dota_workloads::{Benchmark, TaskSpec};

    fn setup(seed: u64) -> (Model, ParamSet, Dataset) {
        let spec = TaskSpec::tiny(Benchmark::Text, 16, seed);
        let (train, _) = spec.generate_split(10, 2);
        let (model, params) = build_model(&spec, seed);
        (model, params, train)
    }

    #[test]
    fn clean_run_trains_and_checkpoints() {
        let (model, mut params, data) = setup(3);
        let dir = std::env::temp_dir().join(format!("dota_wd_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("guarded.json");
        let out = train_dense_guarded(
            &model,
            &mut params,
            &data,
            &TrainOptions {
                epochs: 3,
                ..Default::default()
            },
            &WatchdogOptions {
                checkpoint_path: Some(ckpt.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.losses.len(), 3);
        assert_eq!(out.rollbacks, 0);
        // The checkpoint holds the final parameters, bit-exactly.
        let loaded = checkpoint::load_params(&ckpt).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        for (a, b) in params.ids().zip(loaded.ids()) {
            assert_eq!(params.value(a), loaded.value(b));
        }
    }

    #[test]
    fn injected_divergence_rolls_back_and_recovers() {
        let (model, params, data) = setup(4);
        let clean = {
            let mut p = params.clone();
            train_dense_guarded(
                &model,
                &mut p,
                &data,
                &TrainOptions {
                    epochs: 2,
                    ..Default::default()
                },
                &WatchdogOptions::default(),
            )
            .unwrap()
        };
        // Fault decisions key on (epoch, attempt), so a rolled-back epoch
        // can pass on retry. Find a seed where at least one epoch fires
        // but none exhausts its retries.
        let mut exercised = false;
        for seed in 0..32u64 {
            let plan = FaultPlan::new(seed).with_rate(FaultSite::TrainLoss, 0.5);
            let guard = dota_faults::session(plan);
            let mut p = params.clone();
            let result = train_dense_guarded(
                &model,
                &mut p,
                &data,
                &TrainOptions {
                    epochs: 2,
                    ..Default::default()
                },
                &WatchdogOptions::default(),
            );
            let rolled = guard.counter("faults.train.rollbacks");
            drop(guard);
            if let Ok(out) = result {
                if rolled > 0 {
                    assert_eq!(out.rollbacks as u64, rolled);
                    assert!(out.final_lr < 0.003 + 1e-9);
                    assert_eq!(out.losses.len(), clean.losses.len());
                    exercised = true;
                    break;
                }
            }
        }
        assert!(exercised, "no seed in 0..32 exercised an absorbed rollback");
    }

    #[test]
    fn persistent_divergence_is_typed_error() {
        let (model, mut params, data) = setup(5);
        let _guard = dota_faults::session(FaultPlan::new(9).with_rate(FaultSite::TrainLoss, 1.0));
        let err = train_dense_guarded(
            &model,
            &mut params,
            &data,
            &TrainOptions {
                epochs: 2,
                ..Default::default()
            },
            &WatchdogOptions {
                max_retries: 2,
                ..Default::default()
            },
        )
        .unwrap_err();
        match err {
            TrainError::Diverged {
                epoch,
                retries,
                ref reason,
            } => {
                assert_eq!(epoch, 0);
                assert_eq!(retries, 2);
                assert!(reason.contains("injected"), "{reason}");
            }
            other => panic!("expected Diverged, got {other}"),
        }
    }

    #[test]
    fn rollback_restores_exact_parameters() {
        let (model, mut params, data) = setup(6);
        let before = params.clone();
        let _guard = dota_faults::session(FaultPlan::new(9).with_rate(FaultSite::TrainLoss, 1.0));
        let _ = train_dense_guarded(
            &model,
            &mut params,
            &data,
            &TrainOptions {
                epochs: 1,
                ..Default::default()
            },
            &WatchdogOptions {
                max_retries: 1,
                ..Default::default()
            },
        )
        .unwrap_err();
        for (a, b) in before.ids().zip(params.ids()) {
            assert_eq!(
                before.value(a),
                params.value(b),
                "rollback left modified parameters behind"
            );
        }
    }
}
