//! `dota analyze` — joins host-time profiles (`dota-prof`) with simulated
//! hardware counters (`dota-trace`) into a deterministic bottleneck report.
//!
//! The report answers the questions the paper's evaluation answers per
//! component (Figs. 12–13): where do the simulated cycles go, how well are
//! the PEs utilized per stage, is the design compute- or memory-bound
//! (roofline/arithmetic-intensity classification), and — on the host side —
//! where does the wall clock go and how far can `DOTA_THREADS` push it
//! (Amdahl attribution over the parallelizable span fraction).
//!
//! # Determinism contract
//!
//! Everything derived from hardware counters and the [`AccelConfig`] is
//! byte-identical run-to-run and across `DOTA_THREADS` (the counters
//! themselves are, see `tests/observability.rs`). All volatile host-time
//! data is isolated under the single top-level `"host"` key, which
//! [`crate::report::DiffOptions`] already ignores at every depth — so two
//! analyze reports from different machines or thread counts diff clean via
//! `dota report diff` unless a *simulated* quantity moved.

use dota_accel::{energy, AccelConfig};
use dota_metrics::{fmt_f64, write_json_string};
use dota_prof::{AllocStats, SpanStat};
use std::collections::BTreeMap;

/// Everything [`render`] needs, captured at the end of an instrumented run.
#[derive(Debug)]
pub struct AnalyzeInputs<'a> {
    /// Report label (typically the command or benchmark name).
    pub label: &'a str,
    /// Hardware-counter snapshot (`dota_trace::counters_snapshot`).
    pub counters: &'a BTreeMap<String, u64>,
    /// Host span statistics (`dota_prof::spans_snapshot`).
    pub spans: &'a [SpanStat],
    /// Host allocation counters (`dota_prof::alloc_stats`).
    pub alloc: AllocStats,
    /// The simulated hardware the counters were produced on.
    pub config: &'a AccelConfig,
    /// Host thread-pool width the run executed with.
    pub threads: usize,
    /// How many host hotspots to keep (top-N by self time).
    pub top_hotspots: usize,
}

/// One row of the host hotspot ranking.
#[derive(Debug, Clone)]
pub struct Hotspot {
    /// Collapsed span path (`a;b;c`).
    pub path: String,
    /// Completed activations.
    pub count: u64,
    /// Total milliseconds including children.
    pub total_ms: f64,
    /// Milliseconds excluding children.
    pub self_ms: f64,
    /// Bytes allocated while innermost (zero without `prof-alloc`).
    pub alloc_bytes: u64,
}

/// Host hotspots ranked by self time (descending), ties broken by path so
/// the ordering is total.
pub fn hotspots(spans: &[SpanStat], top: usize) -> Vec<Hotspot> {
    let mut rows: Vec<&SpanStat> = spans.iter().filter(|s| s.count > 0).collect();
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
    rows.truncate(top);
    rows.iter()
        .map(|s| Hotspot {
            path: s.path.clone(),
            count: s.count,
            total_ms: s.total_ns as f64 / 1e6,
            self_ms: s.self_ns as f64 / 1e6,
            alloc_bytes: s.alloc_bytes,
        })
        .collect()
}

/// Fraction of host self time spent in spans that the `parallel` feature
/// fans out (GEMM row blocks and per-head attention) — the `p` in Amdahl's
/// law. Zero when nothing was profiled.
pub fn parallel_fraction(spans: &[SpanStat]) -> f64 {
    let total: u64 = spans.iter().map(|s| s.self_ns).sum();
    if total == 0 {
        return 0.0;
    }
    let par: u64 = spans
        .iter()
        .filter(|s| s.name.starts_with("gemm.") || s.name == "attn.head")
        .map(|s| s.self_ns)
        .sum();
    par as f64 / total as f64
}

/// Amdahl speedup bound for `threads` threads at parallel fraction `p`.
pub fn amdahl_speedup(p: f64, threads: usize) -> f64 {
    1.0 / ((1.0 - p) + p / threads as f64)
}

fn get(counters: &BTreeMap<String, u64>, key: &str) -> u64 {
    counters.get(key).copied().unwrap_or(0)
}

/// Sum of all counters whose name starts with `prefix`, with the matching
/// suffixes returned for per-precision breakdowns.
fn prefixed(counters: &BTreeMap<String, u64>, prefix: &str) -> Vec<(String, u64)> {
    counters
        .iter()
        .filter(|(k, _)| k.starts_with(prefix))
        .map(|(k, &v)| (k[prefix.len()..].to_owned(), v))
        .collect()
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn json_u64_map(out: &mut String, indent: &str, entries: &[(String, u64)]) {
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(indent);
        write_json_string(out, k);
        out.push_str(&format!(": {v}"));
    }
    if !entries.is_empty() {
        out.push('\n');
        out.push_str("  ");
        out.push_str(indent);
    }
    out.push('}');
}

/// Renders the bottleneck report as canonical JSON (fixed key order,
/// `fmt_f64` floats). See the module docs for the determinism contract.
pub fn render(inputs: &AnalyzeInputs<'_>) -> String {
    let c = inputs.counters;
    let cfg = inputs.config;

    // --- Simulated cycles per stage. ---
    let linear = get(c, "accel.cycles.linear");
    let detection = get(c, "accel.cycles.detection");
    let attention = get(c, "accel.cycles.attention");
    let ffn = get(c, "accel.cycles.ffn");
    let total_cycles = linear + detection + attention + ffn;
    let stages = [
        ("attention", attention),
        ("detection", detection),
        ("ffn", ffn),
        ("linear", linear),
    ];

    // --- MACs by precision. With the default config the linear and
    // attention stages share the fx16 counter, so per-stage utilization is
    // only reported where the split is unambiguous (detection vs. the
    // RMMU compute stages as a whole). ---
    let rmmu_macs = prefixed(c, "rmmu.macs.");
    let detect_macs = prefixed(c, "rmmu.detect_macs.");
    let rmmu_total: u64 = rmmu_macs.iter().map(|(_, v)| v).sum();
    let detect_total: u64 = detect_macs.iter().map(|(_, v)| v).sum();
    let total_macs = rmmu_total + detect_total;
    let compute_cycles = linear + attention + ffn;

    let dram_read = get(c, "dram.bytes_read");
    let dram_written = get(c, "dram.bytes_written");
    let dram_total = dram_read + dram_written;

    let peak_fx16 = cfg.fx16_macs_per_cycle();
    let peak_detect = cfg.detect_macs_per_cycle();
    let bytes_per_cycle = cfg.dram_gbps / energy::FREQ_GHZ;
    let intensity = if dram_total == 0 {
        0.0
    } else {
        total_macs as f64 / dram_total as f64
    };
    let machine_balance = peak_fx16 / bytes_per_cycle;
    let classification = if total_macs == 0 && dram_total == 0 {
        "idle"
    } else if intensity >= machine_balance {
        "compute-bound"
    } else {
        "memory-bound"
    };

    let key_loads = get(c, "accel.key_loads");
    let rbr_loads = get(c, "accel.key_loads_row_by_row");

    let lanes = prefixed(c, "lane.");
    let makespan = get(c, "lane.makespan_cycles");

    // --- Host side (volatile; everything below lands under "host"). ---
    let span_total_ns: u64 = inputs
        .spans
        .iter()
        .filter(|s| s.depth == 0)
        .map(|s| s.total_ns)
        .sum();
    let hot = hotspots(inputs.spans, inputs.top_hotspots);
    let p = parallel_fraction(inputs.spans);

    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"label\": ");
    write_json_string(&mut out, inputs.label);
    out.push_str(",\n  \"schema\": \"dota-analyze-v1\",\n");

    out.push_str("  \"cycles\": {");
    for (i, (name, v)) in stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{name}\": {v}"));
    }
    out.push_str(&format!(",\n    \"total\": {total_cycles}\n  }},\n"));

    out.push_str("  \"stage_share\": {");
    for (i, (name, v)) in stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{name}\": {}",
            fmt_f64(ratio(*v, total_cycles))
        ));
    }
    out.push_str("\n  },\n");

    out.push_str("  \"compute\": {\n    \"rmmu_macs\": ");
    json_u64_map(&mut out, "  ", &rmmu_macs);
    out.push_str(",\n    \"detect_macs\": ");
    json_u64_map(&mut out, "  ", &detect_macs);
    out.push_str(&format!(
        ",\n    \"total_macs\": {total_macs},\n    \"mfu_ops\": {},\n",
        get(c, "mfu.ops")
    ));
    out.push_str(&format!(
        "    \"utilization\": {{\n      \"compute_stages\": {{\"achieved_macs_per_cycle\": {}, \"peak_macs_per_cycle\": {}, \"utilization\": {}}},\n",
        fmt_f64(ratio(rmmu_total, compute_cycles)),
        fmt_f64(peak_fx16),
        fmt_f64(ratio(rmmu_total, compute_cycles) / peak_fx16.max(f64::MIN_POSITIVE)),
    ));
    out.push_str(&format!(
        "      \"detection\": {{\"achieved_macs_per_cycle\": {}, \"peak_macs_per_cycle\": {}, \"utilization\": {}}}\n    }}\n  }},\n",
        fmt_f64(ratio(detect_total, detection)),
        fmt_f64(peak_detect),
        fmt_f64(ratio(detect_total, detection) / peak_detect.max(f64::MIN_POSITIVE)),
    ));

    out.push_str(&format!(
        "  \"memory\": {{\n    \"dram_bytes_read\": {dram_read},\n    \"dram_bytes_written\": {dram_written},\n    \"sram_bytes_accessed\": {},\n    \"sram_bank_conflict_stalls\": {}\n  }},\n",
        get(c, "sram.bytes_accessed"),
        get(c, "sram.bank_conflict_stalls"),
    ));

    out.push_str(&format!(
        "  \"roofline\": {{\n    \"total_macs\": {total_macs},\n    \"dram_bytes\": {dram_total},\n    \"arithmetic_intensity_macs_per_byte\": {},\n    \"machine_balance_macs_per_byte\": {},\n    \"peak_macs_per_cycle\": {},\n    \"dram_bytes_per_cycle\": {},\n    \"classification\": \"{classification}\"\n  }},\n",
        fmt_f64(intensity),
        fmt_f64(machine_balance),
        fmt_f64(peak_fx16),
        fmt_f64(bytes_per_cycle),
    ));

    out.push_str(&format!(
        "  \"attention\": {{\n    \"heads\": {},\n    \"connections_total\": {},\n    \"connections_retained\": {},\n    \"connections_omitted\": {},\n    \"retention\": {}\n  }},\n",
        get(c, "attn.heads"),
        get(c, "attn.connections.total"),
        get(c, "attn.connections.retained"),
        get(c, "attn.connections.omitted"),
        fmt_f64(ratio(
            get(c, "attn.connections.retained"),
            get(c, "attn.connections.total")
        )),
    ));

    out.push_str(&format!(
        "  \"scheduler\": {{\n    \"key_loads\": {key_loads},\n    \"key_loads_row_by_row\": {rbr_loads},\n    \"load_savings\": {}\n  }},\n",
        fmt_f64(1.0 - ratio(key_loads, rbr_loads)),
    ));

    // Per-lane utilization (only present when the pipelined lane simulator
    // ran; `lane.<resource>.busy_cycles` vs. the shared makespan).
    out.push_str("  \"lanes\": {");
    let busy: Vec<(String, u64)> = lanes
        .iter()
        .filter(|(k, _)| k.ends_with(".busy_cycles"))
        .map(|(k, v)| (k.trim_end_matches(".busy_cycles").to_owned(), *v))
        .collect();
    for (i, (res, v)) in busy.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_json_string(&mut out, res);
        out.push_str(&format!(
            ": {{\"busy_cycles\": {v}, \"utilization\": {}}}",
            fmt_f64(ratio(*v, makespan))
        ));
    }
    if makespan > 0 {
        if !busy.is_empty() {
            out.push(',');
        }
        out.push_str(&format!("\n    \"makespan_cycles\": {makespan}\n  "));
    } else if !busy.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    // --- Volatile host-time section (ignored by `dota report diff`). ---
    out.push_str(&format!(
        "  \"host\": {{\n    \"threads\": {},\n    \"total_ms\": {},\n",
        inputs.threads,
        fmt_f64(span_total_ns as f64 / 1e6),
    ));
    out.push_str("    \"hotspots\": [");
    for (i, h) in hot.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n      {\"path\": ");
        write_json_string(&mut out, &h.path);
        out.push_str(&format!(
            ", \"count\": {}, \"total_ms\": {}, \"self_ms\": {}, \"alloc_bytes\": {}}}",
            h.count,
            fmt_f64(h.total_ms),
            fmt_f64(h.self_ms),
            h.alloc_bytes,
        ));
    }
    if !hot.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("],\n");
    out.push_str(&format!(
        "    \"alloc\": {{\"allocated_bytes\": {}, \"allocation_calls\": {}, \"freed_bytes\": {}, \"peak_bytes\": {}, \"live_bytes\": {}}},\n",
        inputs.alloc.allocated_bytes,
        inputs.alloc.allocation_calls,
        inputs.alloc.freed_bytes,
        inputs.alloc.peak_bytes,
        inputs.alloc.live_bytes,
    ));
    out.push_str(&format!(
        "    \"amdahl\": {{\n      \"parallel_fraction\": {},\n      \"measured_threads\": {},\n      \"predicted_speedup\": {{\"1\": {}, \"2\": {}, \"4\": {}, \"8\": {}}}\n    }}\n  }}\n}}\n",
        fmt_f64(p),
        inputs.threads,
        fmt_f64(amdahl_speedup(p, 1)),
        fmt_f64(amdahl_speedup(p, 2)),
        fmt_f64(amdahl_speedup(p, 4)),
        fmt_f64(amdahl_speedup(p, 8)),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counters() -> BTreeMap<String, u64> {
        let mut c = BTreeMap::new();
        c.insert("accel.cycles.linear".into(), 4_000);
        c.insert("accel.cycles.detection".into(), 500);
        c.insert("accel.cycles.attention".into(), 1_500);
        c.insert("accel.cycles.ffn".into(), 2_000);
        c.insert("rmmu.macs.fx16".into(), 3_000_000);
        c.insert("rmmu.detect_macs.int4".into(), 400_000);
        c.insert("mfu.ops".into(), 10_000);
        c.insert("dram.bytes_read".into(), 80_000);
        c.insert("dram.bytes_written".into(), 20_000);
        c.insert("sram.bytes_accessed".into(), 640_000);
        c.insert("attn.heads".into(), 8);
        c.insert("attn.connections.total".into(), 2_048);
        c.insert("attn.connections.retained".into(), 512);
        c.insert("attn.connections.omitted".into(), 1_536);
        c.insert("accel.key_loads".into(), 40);
        c.insert("accel.key_loads_row_by_row".into(), 128);
        c
    }

    fn sample_spans() -> Vec<SpanStat> {
        let mk = |path: &str, name: &str, depth, self_ns, total_ns| SpanStat {
            path: path.into(),
            name: name.into(),
            depth,
            count: 1,
            total_ns,
            self_ns,
            alloc_bytes: 0,
            alloc_calls: 0,
        };
        vec![
            mk("model.infer", "model.infer", 0, 2_000_000, 10_000_000),
            mk(
                "model.infer;gemm.matmul",
                "gemm.matmul",
                1,
                6_000_000,
                6_000_000,
            ),
            mk(
                "model.infer;attn.head",
                "attn.head",
                1,
                2_000_000,
                2_000_000,
            ),
        ]
    }

    fn render_sample(threads: usize) -> String {
        let counters = sample_counters();
        let spans = sample_spans();
        render(&AnalyzeInputs {
            label: "test",
            counters: &counters,
            spans: &spans,
            alloc: AllocStats::default(),
            config: &AccelConfig::default(),
            threads,
            top_hotspots: 10,
        })
    }

    fn as_int(v: &serde_json::Value) -> i64 {
        match v {
            serde_json::Value::Int(i) => *i,
            serde_json::Value::UInt(u) => *u as i64,
            other => panic!("expected integer, got {other:?}"),
        }
    }

    #[test]
    fn report_is_valid_json_with_expected_sections() {
        let json = render_sample(1);
        let v = serde_json::parse(&json).expect("valid JSON");
        for key in [
            "label",
            "schema",
            "cycles",
            "stage_share",
            "compute",
            "memory",
            "roofline",
            "attention",
            "scheduler",
            "lanes",
            "host",
        ] {
            assert!(v.get(key).is_some(), "missing section {key}");
        }
        assert_eq!(
            as_int(v.get("cycles").unwrap().get("total").unwrap()),
            8_000
        );
        match v.get("roofline").unwrap().get("classification").unwrap() {
            serde_json::Value::Str(s) => assert_eq!(s, "compute-bound"),
            other => panic!("classification not a string: {other:?}"),
        }
    }

    #[test]
    fn non_host_sections_identical_across_thread_counts() {
        let a = render_sample(1);
        let b = render_sample(8);
        // Everything volatile is under the `"host"` key, which is the last
        // top-level section by construction — the documents must agree
        // byte-for-byte up to it.
        let cut = |s: &str| s[..s.find("\"host\"").expect("host section")].to_owned();
        assert_ne!(a, b, "host section differs (threads recorded)");
        assert_eq!(cut(&a), cut(&b), "non-host sections byte-identical");
    }

    #[test]
    fn amdahl_and_hotspots_behave() {
        let spans = sample_spans();
        let p = parallel_fraction(&spans);
        assert!((p - 0.8).abs() < 1e-9, "8/10 of self time parallel: {p}");
        assert!(amdahl_speedup(p, 1) == 1.0);
        assert!(amdahl_speedup(p, 8) > 2.0 && amdahl_speedup(p, 8) < 8.0);
        let hot = hotspots(&spans, 2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].path, "model.infer;gemm.matmul");
    }

    #[test]
    fn missing_counters_render_as_idle() {
        let counters = BTreeMap::new();
        let json = render(&AnalyzeInputs {
            label: "empty",
            counters: &counters,
            spans: &[],
            alloc: AllocStats::default(),
            config: &AccelConfig::default(),
            threads: 1,
            top_hotspots: 5,
        });
        let v = serde_json::parse(&json).expect("valid JSON");
        match v.get("roofline").unwrap().get("classification").unwrap() {
            serde_json::Value::Str(s) => assert_eq!(s, "idle"),
            other => panic!("classification not a string: {other:?}"),
        }
        assert_eq!(as_int(v.get("cycles").unwrap().get("total").unwrap()), 0);
    }
}
