//! `dota` — command-line front end for the DOTA reproduction.
//!
//! ```text
//! dota table2                         # hardware inventory
//! dota speedup [BENCH] [--variant c]  # Fig. 12-style comparison rows
//! dota energy [BENCH]                 # Fig. 13-style comparison rows
//! dota simulate BENCH --retention R   # raw simulator report
//! dota decode --context N --tokens T  # decoder-mode analysis
//! dota train BENCH [--retention R] [--seq N]   # tiny-model accuracy run
//! dota infer BENCH [--retention R] [--seq N]   # one traced inference
//! dota analyze BENCH [--out FILE]              # cycle-vs-time bottleneck report
//! dota faults --seed S --rates 0,0.05,1       # fault-injection campaign
//! dota serve [--bench] [--out FILE]           # continuous-batching load test
//! dota serve --chaos [--out FILE]             # fault-rate x load availability sweep
//! dota serve --metrics-addr H:P [--flight-out F]  # live telemetry plane
//! dota top --addr H:P                         # terminal dashboard over /metrics
//! ```
//!
//! Every command accepts the global observability flags `--trace <path>`
//! (Chrome-trace JSON, open in `chrome://tracing` or Perfetto),
//! `--counters <path>` (flat hardware-counter JSON) and `--profile <dir>`
//! (host wall-clock/allocation profile: flamegraph-ready collapsed stacks
//! plus profile JSON), plus `--faults site=rate[,...]` / `--fault-seed S`
//! to run under deterministic fault injection (see the README's
//! Robustness section).
//!
//! Build/run: `cargo run --release -p dota-core --bin dota -- <command>`.

use dota_accel::decode::simulate_decode;
use dota_accel::synth::SelectionProfile;
use dota_accel::{energy, AccelConfig, Accelerator};
use dota_core::analyze;
use dota_core::campaign;
use dota_core::experiments::{self, BenchmarkRun, Method, TrainOptions};
use dota_core::presets::{self, OperatingPoint};
use dota_core::report;
use dota_core::DotaSystem;
use dota_detector::{DetectorConfig, DotaHook};
use dota_metrics::{Manifest, MetricsSink};
use dota_workloads::{Benchmark, TaskSpec};
use std::process::ExitCode;

fn main() -> ExitCode {
    if let Err(e) = validate_env() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_path, counters_path, hists_path, fault_spec, fault_seed) = match (
        take_flag(&mut args, "--trace"),
        take_flag(&mut args, "--counters"),
        take_flag(&mut args, "--hists"),
        take_flag(&mut args, "--faults"),
        take_flag(&mut args, "--fault-seed"),
    ) {
        (Ok(t), Ok(c), Ok(h), Ok(f), Ok(s)) => (
            t.or_else(|| env_path("DOTA_TRACE")),
            c.or_else(|| env_path("DOTA_COUNTERS")),
            h.or_else(|| env_path("DOTA_HISTS")),
            f,
            s,
        ),
        (Err(e), ..) | (_, Err(e), ..) | (_, _, Err(e), ..) | (.., Err(e), _) | (.., Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let profile_dir = match take_flag(&mut args, "--profile") {
        Ok(p) => p.or_else(|| env_path("DOTA_PROF")),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(command) = args.first().cloned() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // One trace session spans the whole command; outputs are written only
    // on success so a failed run never leaves a half-meaningful trace.
    let session =
        (trace_path.is_some() || counters_path.is_some()).then(|| dota_trace::session(&command));
    // Likewise one histogram session for score/kernel distributions.
    let hist_session = hists_path
        .is_some()
        .then(|| dota_metrics::hist_session(&command));
    // And one profiling session for host wall-clock/allocation spans
    // (`dota analyze` opens its own when this one is absent).
    let prof_session = profile_dir.is_some().then(|| dota_prof::session(&command));
    // A fault session makes any command run under deterministic injection
    // (`dota faults` manages its own sessions instead).
    let fault_session = match fault_session(&command, fault_spec, fault_seed) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "table2" => cmd_table2(),
        "speedup" => cmd_speedup(rest),
        "energy" => cmd_energy(rest),
        "simulate" => cmd_simulate(rest),
        "decode" => cmd_decode(rest),
        "train" => cmd_train(rest),
        "infer" => cmd_infer(rest),
        "analyze" => cmd_analyze(rest),
        "report" => cmd_report(rest),
        "faults" => cmd_faults(rest),
        "serve" => cmd_serve(rest),
        "top" => cmd_top(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    if let Some(guard) = &fault_session {
        let injected = guard.injected_total();
        if injected > 0 {
            let rows: Vec<String> = guard
                .counters()
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            eprintln!("[faults: {}]", rows.join(" "));
        }
    }
    drop(fault_session);
    let result = result.and_then(|()| {
        if let (Some(prof), Some(dir)) = (&prof_session, &profile_dir) {
            let dir = std::path::Path::new(dir);
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("creating profile dir {}: {e}", dir.display()))?;
            prof.write_folded(&dir.join("profile.folded"))
                .map_err(|e| format!("writing profile.folded: {e}"))?;
            prof.write_profile(&dir.join("profile.json"))
                .map_err(|e| format!("writing profile.json: {e}"))?;
            eprintln!("[profile written to {}]", dir.display());
        }
        if let (Some(hists), Some(p)) = (&hist_session, &hists_path) {
            hists
                .write_summary(std::path::Path::new(p))
                .map_err(|e| format!("writing histograms {p}: {e}"))?;
            eprintln!("[histograms written to {p}]");
        }
        let Some(session) = &session else {
            return Ok(());
        };
        if let Some(p) = &trace_path {
            session
                .write_trace(std::path::Path::new(p))
                .map_err(|e| format!("writing trace {p}: {e}"))?;
            eprintln!("[trace written to {p}]");
        }
        if let Some(p) = &counters_path {
            session
                .write_counters(std::path::Path::new(p))
                .map_err(|e| format!("writing counters {p}: {e}"))?;
            eprintln!("[counters written to {p}]");
        }
        Ok(())
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Rejects malformed observability/threading environment variables up
/// front: a typo'd `DOTA_THREADS=all` silently falling back to the
/// default would invalidate a benchmark without any sign of it.
fn validate_env() -> Result<(), String> {
    if let Ok(v) = std::env::var("DOTA_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => {}
            _ => {
                return Err(format!(
                    "DOTA_THREADS must be a positive integer, got `{v}`"
                ))
            }
        }
    }
    for name in ["DOTA_TRACE", "DOTA_COUNTERS", "DOTA_HISTS", "DOTA_PROF"] {
        if let Ok(v) = std::env::var(name) {
            if v.trim().is_empty() {
                return Err(format!(
                    "{name} is set but empty; set it to an output path or unset it"
                ));
            }
        }
    }
    // Serving knobs: a typo'd batch size or shed policy silently falling
    // back to defaults would make one load test incomparable with the
    // next, so reject malformed values up front like the knobs above.
    if let Ok(v) = std::env::var("DOTA_SERVE_BATCH") {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => {}
            _ => {
                return Err(format!(
                    "DOTA_SERVE_BATCH must be a positive integer, got `{v}`"
                ))
            }
        }
    }
    if let Ok(v) = std::env::var("DOTA_SERVE_DEADLINE") {
        match v.trim().parse::<f64>() {
            Ok(x) if x > 0.0 && x.is_finite() => {}
            _ => {
                return Err(format!(
                    "DOTA_SERVE_DEADLINE must be a positive number of microseconds, got `{v}`"
                ))
            }
        }
    }
    if let Ok(v) = std::env::var("DOTA_SERVE_SHED") {
        match v.trim().to_ascii_lowercase().as_str() {
            "queue" | "queue-only" | "retention" | "shed" | "slo" | "both" => {}
            _ => {
                return Err(format!(
                    "DOTA_SERVE_SHED must be queue|retention|slo|both, got `{v}`"
                ))
            }
        }
    }
    if let Ok(v) = std::env::var("DOTA_SERVE_CHAOS") {
        let rates: Result<Vec<f64>, _> = v
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse::<f64>())
            .collect();
        match rates {
            Ok(rs) if !rs.is_empty() && rs.iter().all(|r| r.is_finite() && (0.0..=1.0).contains(r)) => {}
            _ => {
                return Err(format!(
                    "DOTA_SERVE_CHAOS must be a comma-separated list of fault rates in [0, 1], got `{v}`"
                ))
            }
        }
    }
    if let Ok(v) = std::env::var("DOTA_SERVE_RETRY_CAP") {
        if v.trim().parse::<usize>().is_err() {
            return Err(format!(
                "DOTA_SERVE_RETRY_CAP must be a non-negative integer, got `{v}`"
            ));
        }
    }
    if let Ok(v) = std::env::var("DOTA_SERVE_RETRY_BACKOFF") {
        match v.trim().parse::<u64>() {
            Ok(n) if n >= 1 => {}
            _ => {
                return Err(format!(
                    "DOTA_SERVE_RETRY_BACKOFF must be a positive cycle count, got `{v}`"
                ))
            }
        }
    }
    if let Ok(v) = std::env::var("DOTA_SERVE_TIMELINE") {
        if v.trim().is_empty() {
            return Err(
                "DOTA_SERVE_TIMELINE is set but empty; set it to an output path or unset it"
                    .to_owned(),
            );
        }
    }
    if let Ok(v) = std::env::var("DOTA_SERVE_METRICS_ADDR") {
        if v.trim().parse::<std::net::SocketAddr>().is_err() {
            return Err(format!(
                "DOTA_SERVE_METRICS_ADDR must be a socket address like 127.0.0.1:9184, got `{v}`"
            ));
        }
    }
    if let Ok(v) = std::env::var("DOTA_SERVE_FLIGHT") {
        if v.trim().is_empty() {
            return Err(
                "DOTA_SERVE_FLIGHT is set but empty; set it to an output path or unset it"
                    .to_owned(),
            );
        }
    }
    // A typo'd kernel family (or one this CPU cannot run) would silently
    // fall back and invalidate a benchmark, exactly like a bad
    // DOTA_THREADS; surface it here instead.
    dota_tensor::simd::family_from_env_checked().map(|_| ())
}

/// A non-empty environment variable as a path fallback for the matching
/// CLI flag ([`validate_env`] has already rejected set-but-empty values).
fn env_path(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|v| !v.trim().is_empty())
}

/// Opens the global fault-injection session requested by `--faults`
/// (and `--fault-seed`), if any. `dota faults` manages its own sessions —
/// combining it with the global flag is rejected rather than deadlocking
/// on the session exclusivity lock.
fn fault_session(
    command: &str,
    spec: Option<String>,
    seed: Option<String>,
) -> Result<Option<dota_faults::FaultGuard>, String> {
    let seed = seed
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| format!("--fault-seed must be an unsigned integer, got `{s}`"))
        })
        .transpose()?
        .unwrap_or(0);
    let Some(spec) = spec else {
        return Ok(None);
    };
    if command == "faults" {
        return Err(
            "`dota faults` runs its own fault sessions; drop the global --faults flag \
                    and use `--sites`/`--rates` instead"
                .to_owned(),
        );
    }
    let plan = dota_faults::FaultPlan::parse_spec(seed, &spec)?;
    Ok(Some(dota_faults::session(plan)))
}

fn cmd_faults(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    if let Some(extra) = positional.first() {
        return Err(format!(
            "faults takes no positional arguments, got `{extra}`"
        ));
    }
    let mut opts = campaign::CampaignOptions {
        seed: flag_usize(&flags, "seed")?.unwrap_or(0) as u64,
        ..Default::default()
    };
    if let Some(sites) = flags.get("sites") {
        opts.sites = sites
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| dota_faults::FaultSite::parse(s.trim()))
            .collect::<Result<Vec<_>, _>>()?;
    }
    if let Some(rates) = flags.get("rates") {
        opts.rates = rates
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                s.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("--rates entries must be numbers, got `{s}`"))
            })
            .collect::<Result<Vec<_>, _>>()?;
    }
    if let Some(seq) = flag_usize(&flags, "seq")? {
        opts.seq_len = seq;
    }
    if opts.sites.is_empty() || opts.rates.is_empty() {
        return Err("the campaign needs at least one site and one rate".to_owned());
    }
    println!(
        "fault campaign: seed {}, {} site(s) x {} rate(s), seq {}",
        opts.seed,
        opts.sites.len(),
        opts.rates.len(),
        opts.seq_len
    );
    let report = campaign::run_campaign(&opts);
    println!(
        "{:<18} {:>6} {:>9} {:>9} {:>14}  error",
        "site", "rate", "status", "injected", "outcome"
    );
    for run in &report.runs {
        println!(
            "{:<18} {:>6} {:>9} {:>9} {:>14}  {}",
            run.site.name(),
            run.rate,
            run.status.name(),
            run.injected,
            if run.outcome.is_finite() {
                format!("{:.3}", run.outcome)
            } else {
                "-".to_owned()
            },
            run.error.as_deref().unwrap_or("")
        );
    }
    let (clean, absorbed, failed) = report.tally();
    println!("{clean} clean, {absorbed} absorbed, {failed} failed");
    if let Some(out) = flags.get("out") {
        let path = std::path::Path::new(out);
        report
            .write(path)
            .map_err(|e| format!("writing campaign report {out}: {e}"))?;
        eprintln!("[campaign report written to {out}]");
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let bench = take_bool_flag(&mut args, "--bench");
    let chaos = take_bool_flag(&mut args, "--chaos");
    let (positional, flags) = parse_flags(&args)?;
    if let Some(extra) = positional.first() {
        return Err(format!(
            "serve takes no positional arguments, got `{extra}`"
        ));
    }
    let mut opts = dota_serve::BenchOptions::default();
    if let Some(n) = flag_usize(&flags, "requests")? {
        opts.requests = n;
    }
    if let Some(s) = flag_usize(&flags, "seed")? {
        opts.seed = s as u64;
    }
    // Flag wins over environment wins over default ([`validate_env`] has
    // already rejected malformed DOTA_SERVE_* values).
    if let Some(c) = flag_usize(&flags, "capacity")?
        .or_else(|| std::env::var("DOTA_SERVE_BATCH").ok()?.trim().parse().ok())
    {
        opts.capacity = c;
    }
    if let Some(q) = flag_usize(&flags, "queue")? {
        opts.queue_capacity = q;
    }
    if let Some(s) = flag_usize(&flags, "seq")? {
        opts.seq = s;
    }
    if let Some(d) = flag_f64(&flags, "deadline-interactive")?.or_else(|| {
        std::env::var("DOTA_SERVE_DEADLINE")
            .ok()?
            .trim()
            .parse()
            .ok()
    }) {
        opts.interactive_deadline_us = d;
    }
    if let Some(d) = flag_f64(&flags, "deadline-batch")? {
        opts.batch_deadline_us = d;
    }
    let shed_spec = flags
        .get("shed")
        .cloned()
        .or_else(|| env_path("DOTA_SERVE_SHED"));
    if let Some(spec) = &shed_spec {
        if !chaos {
            opts.sheds = match spec.trim().to_ascii_lowercase().as_str() {
                "both" => vec![
                    dota_serve::ShedPolicy::QueueOnly,
                    dota_serve::ShedPolicy::Retention,
                ],
                other => vec![dota_serve::ShedPolicy::parse(other)?],
            };
        }
    }
    if let Some(list) = flags.get("loads") {
        opts.loads = list
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                s.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("--loads entries must be numbers, got `{s}`"))
            })
            .collect::<Result<Vec<_>, _>>()?;
    } else if !bench && !chaos {
        // Without --bench: one load point (default 2x capacity) instead of
        // the full sweep grid.
        opts.loads = vec![flag_f64(&flags, "load")?.unwrap_or(2.0)];
    } else if let Some(l) = flag_f64(&flags, "load")? {
        opts.loads = vec![l];
    }
    if let Some(w) = flag_usize(&flags, "slo-window")? {
        opts.slo_window = w;
    }
    // Flag wins over environment wins over off (same ladder as --timeline;
    // [`validate_env`] has already rejected malformed values).
    let metrics_addr = flags
        .get("metrics-addr")
        .cloned()
        .or_else(|| env_path("DOTA_SERVE_METRICS_ADDR"));
    let flight_path = flags
        .get("flight-out")
        .cloned()
        .or_else(|| env_path("DOTA_SERVE_FLIGHT"));
    if chaos {
        if flags.contains_key("timeline") {
            return Err(
                "`serve --chaos` does not record timelines; run `dota serve --timeline` \
                 under the global --faults flag to audit a faulted run"
                    .to_owned(),
            );
        }
        if metrics_addr.is_some() || flight_path.is_some() {
            return Err(
                "`serve --chaos` has no live telemetry plane; use `dota serve --bench` \
                 with --metrics-addr/--flight-out (optionally under the global --faults flag)"
                    .to_owned(),
            );
        }
        return cmd_serve_chaos(opts, shed_spec.as_deref(), &flags);
    }
    let timeline_path = flags
        .get("timeline")
        .cloned()
        .or_else(|| env_path("DOTA_SERVE_TIMELINE"));
    opts.timeline = timeline_path.is_some();

    // The telemetry plane observes the engine and never feeds back into
    // it, so enabling it cannot move a single scheduling decision: bench
    // reports and timelines keep their exact bytes (pinned by tests).
    let flight = (metrics_addr.is_some() || flight_path.is_some())
        .then(|| dota_telemetry::FlightRecorder::shared(FLIGHT_CAPACITY));
    if let Some(f) = &flight {
        opts.flight = Some(std::sync::Arc::clone(f));
    }
    let gauges = metrics_addr
        .is_some()
        .then(|| std::sync::Arc::new(dota_telemetry::ServeGauges::new()));
    if let Some(g) = &gauges {
        opts.gauges = Some(std::sync::Arc::clone(g));
    }
    // A live endpoint is only useful with something to scrape: open
    // counter/histogram collection for the run when no --trace/--counters
    // or --hists session is already doing so (outputs are discarded — the
    // exposition snapshot is the consumer).
    let _live_trace = (metrics_addr.is_some() && !dota_trace::enabled())
        .then(|| dota_trace::session("serve-live"));
    let _live_hists = (metrics_addr.is_some() && !dota_metrics::hist_enabled())
        .then(|| dota_metrics::hist_session("serve-live"));
    let server = match &metrics_addr {
        Some(addr) => {
            dota_telemetry::install_term_handler();
            let g = std::sync::Arc::clone(gauges.as_ref().expect("gauges accompany the endpoint"));
            let srv = dota_telemetry::MetricsServer::start(addr.trim(), move || {
                dota_telemetry::exposition::render(
                    &dota_trace::counters_snapshot(),
                    &g.snapshot(),
                    &dota_metrics::hists_snapshot(),
                )
            })
            .map_err(|e| format!("binding metrics endpoint {addr}: {e}"))?;
            // The bound address (stderr, one line) is the contract for
            // scrapers started with port 0.
            eprintln!("[metrics listening on http://{}/metrics]", srv.addr());
            Some(srv)
        }
        None => None,
    };
    let report = match dota_serve::run_bench(opts) {
        Ok(r) => r,
        Err(e) => {
            // A typed failure is exactly when the last seconds of engine
            // events matter: dump the flight recorder before surfacing it.
            if let Some(f) = &flight {
                let path = flight_path.as_deref().unwrap_or(DEFAULT_FLIGHT_PATH);
                let _ = write_flight(f, path);
            }
            return Err(e);
        }
    };
    let o = &report.options;
    println!(
        "serve load test: seed {}, {} requests/cell, capacity {}, queue {}, seq {}",
        o.seed, o.requests, o.capacity, o.queue_capacity, o.seq
    );
    println!(
        "{:>9} {:>6} {:>7} {:>8} {:>8} {:>9} {:>9} {:>10} {:>10} {:>6}",
        "shed",
        "load",
        "served",
        "evicted",
        "expired",
        "rejected",
        "degraded",
        "p50 e2e",
        "p99 e2e",
        "occ"
    );
    let us = |v: Option<f64>| match v {
        Some(x) => format!("{x:.1}us"),
        None => "-".to_owned(),
    };
    for c in &report.cells {
        println!(
            "{:>9} {:>5.1}x {:>7} {:>8} {:>8} {:>9} {:>9} {:>10} {:>10} {:>6.2}",
            c.shed.name(),
            c.load,
            c.served(),
            c.deadline_evicted,
            c.queue_expired,
            c.rejected,
            c.degraded,
            us(c.e2e_us.quantile(0.5)),
            us(c.e2e_us.quantile(0.99)),
            c.mean_occupancy
        );
    }
    if let Some(out) = flags.get("out") {
        report
            .write(std::path::Path::new(out))
            .map_err(|e| format!("writing serve report {out}: {e}"))?;
        eprintln!("[serve report written to {out}]");
    }
    if let Some(path) = timeline_path {
        let timeline = report
            .timeline
            .as_ref()
            .expect("timeline recording was enabled");
        timeline
            .write(std::path::Path::new(&path))
            .map_err(|e| format!("writing serve timeline {path}: {e}"))?;
        eprintln!("[serve timeline written to {path}]");
    }
    if let (Some(f), Some(path)) = (&flight, &flight_path) {
        write_flight(f, path)?;
    }
    if let Some(srv) = server {
        // Keep the endpoint scrapeable until the operator releases it; a
        // SIGTERM that already arrived mid-run falls straight through.
        eprintln!(
            "[serve complete; metrics endpoint http://{}/metrics stays up until SIGTERM]",
            srv.addr()
        );
        while !dota_telemetry::term_requested() {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        drop(srv);
        if let (Some(f), None) = (&flight, &flight_path) {
            // SIGTERM postmortem dump for runs that never asked for a
            // flight file explicitly.
            write_flight(f, DEFAULT_FLIGHT_PATH)?;
        }
    }
    Ok(())
}

/// Flight-recorder ring size: enough for the full event stream of a
/// default bench sweep, so `dropped` is informative rather than routine.
const FLIGHT_CAPACITY: usize = 65_536;

/// Where the flight recorder lands when dumped without `--flight-out`
/// (typed failure or SIGTERM postmortems).
const DEFAULT_FLIGHT_PATH: &str = "flight.json";

/// Dumps the shared flight recorder as canonical JSON.
fn write_flight(flight: &dota_telemetry::FlightHandle, path: &str) -> Result<(), String> {
    flight
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .write(std::path::Path::new(path))
        .map_err(|e| format!("writing flight recorder {path}: {e}"))?;
    eprintln!("[flight recorder written to {path}]");
    Ok(())
}

/// `dota top` — terminal dashboard over a live `/metrics` endpoint.
fn cmd_top(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let once = take_bool_flag(&mut args, "--once");
    let (positional, flags) = parse_flags(&args)?;
    if let Some(extra) = positional.first() {
        return Err(format!("top takes no positional arguments, got `{extra}`"));
    }
    let addr = flags
        .get("addr")
        .cloned()
        .or_else(|| env_path("DOTA_SERVE_METRICS_ADDR"))
        .ok_or("top needs --addr HOST:PORT (or DOTA_SERVE_METRICS_ADDR)")?;
    let interval_ms = flag_usize(&flags, "interval-ms")?.unwrap_or(1000) as u64;
    let ticks = if once {
        Some(1)
    } else {
        flag_usize(&flags, "ticks")?
    };
    let bounded = ticks.is_some();
    let mut top = dota_telemetry::top::TopState::new();
    let mut polled = 0usize;
    loop {
        let body = dota_telemetry::http::get(addr.trim(), "/metrics")
            .map_err(|e| format!("fetching http://{addr}/metrics: {e}"))?;
        let samples = dota_telemetry::exposition::parse(&body)
            .map_err(|e| format!("parsing http://{addr}/metrics: {e}"))?;
        top.observe(&samples);
        if !bounded {
            // Clear + home; plain appends in bounded mode keep the output
            // pipeable for tests and scripts.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", top.render(&samples));
        polled += 1;
        if ticks == Some(polled) {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// `dota serve --chaos`: the availability campaign — sweeps fault rate x
/// offered load on identical seeded arrivals and reports goodput, served
/// fraction, retry/quarantine activity and tail latency per cell.
fn cmd_serve_chaos(
    bench: dota_serve::BenchOptions,
    shed_spec: Option<&str>,
    flags: &std::collections::BTreeMap<String, String>,
) -> Result<(), String> {
    let mut opts = dota_serve::ChaosOptions {
        bench,
        ..Default::default()
    };
    if let Some(spec) = shed_spec {
        if spec.trim().eq_ignore_ascii_case("both") {
            return Err("a chaos campaign runs one shed policy per report; \
                 use --shed queue|retention|slo"
                .to_owned());
        }
        opts.shed = dota_serve::ShedPolicy::parse(spec.trim())?;
    }
    // Flag wins over environment wins over default ([`validate_env`] has
    // already rejected malformed DOTA_SERVE_* values).
    if let Some(list) = flags
        .get("chaos-rates")
        .cloned()
        .or_else(|| env_path("DOTA_SERVE_CHAOS"))
    {
        opts.rates = list
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                s.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("--chaos-rates entries must be numbers, got `{s}`"))
            })
            .collect::<Result<Vec<_>, _>>()?;
    }
    if let Some(sites) = flags.get("chaos-sites") {
        opts.sites = sites
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| dota_faults::FaultSite::parse(s.trim()))
            .collect::<Result<Vec<_>, _>>()?;
    }
    if let Some(s) = flag_usize(flags, "chaos-seed")? {
        opts.fault_seed = s as u64;
    }
    if let Some(c) = flag_usize(flags, "retry-cap")?.or_else(|| {
        std::env::var("DOTA_SERVE_RETRY_CAP")
            .ok()?
            .trim()
            .parse()
            .ok()
    }) {
        opts.retry_cap = c;
    }
    if let Some(b) = flag_usize(flags, "retry-backoff")?.or_else(|| {
        std::env::var("DOTA_SERVE_RETRY_BACKOFF")
            .ok()?
            .trim()
            .parse()
            .ok()
    }) {
        opts.retry_backoff_cycles = b as u64;
    }
    if let Some(q) = flag_usize(flags, "quarantine")? {
        opts.quarantine_cycles = q as u64;
    }
    if let Some(x) = flag_f64(flags, "ctl-burn-high")? {
        opts.control.burn_high = x;
    }
    if let Some(x) = flag_f64(flags, "ctl-burn-low")? {
        opts.control.burn_low = x;
    }
    if let Some(n) = flag_usize(flags, "ctl-cooldown")? {
        opts.control.cooldown_steps = n as u64;
    }
    println!(
        "chaos campaign: traffic seed {}, fault seed {}, shed {}, {} requests/cell, \
         {} site(s) x {} rate(s) x {} load(s)",
        opts.bench.seed,
        opts.fault_seed,
        opts.shed.name(),
        opts.bench.requests,
        opts.sites.len(),
        opts.rates.len(),
        opts.bench.loads.len()
    );
    println!(
        "retry cap {}, backoff {} cycles (doubling), quarantine {} cycles",
        opts.retry_cap, opts.retry_backoff_cycles, opts.quarantine_cycles
    );
    let report = dota_serve::run_chaos(opts)?;
    println!(
        "{:>6} {:>6} {:>8} {:>7} {:>7} {:>7} {:>8} {:>9} {:>11} {:>10}",
        "load",
        "rate",
        "offered",
        "served",
        "frac",
        "failed",
        "retries",
        "timeouts",
        "goodput/Mc",
        "p99 e2e"
    );
    for c in &report.cells {
        println!(
            "{:>5.1}x {:>6} {:>8} {:>7} {:>6.1}% {:>7} {:>8} {:>9} {:>11.1} {:>10}",
            c.load,
            c.rate,
            c.offered,
            c.served,
            c.served_fraction * 100.0,
            c.failed,
            c.retries,
            c.timeout_steps,
            c.goodput_per_mcycle,
            match c.p99_e2e_us {
                Some(x) => format!("{x:.1}us"),
                None => "-".to_owned(),
            }
        );
    }
    if let Some(out) = flags.get("out") {
        report
            .write(std::path::Path::new(out))
            .map_err(|e| format!("writing chaos report {out}: {e}"))?;
        eprintln!("[chaos report written to {out}]");
    }
    Ok(())
}

/// Removes a valueless `--name` switch from `args`, returning whether it
/// was present ([`parse_flags`] treats every `--flag` as taking a value,
/// so boolean switches must be extracted first).
fn take_bool_flag(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == name) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Removes `--name <value>` from `args` wherever it appears, returning the
/// value.
fn take_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{name} needs a value"));
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Ok(Some(value))
}

const USAGE: &str = "\
usage: dota <command> [options]

commands:
  table2                          print the hardware inventory (Table 2)
  speedup [BENCH] [--variant f|c|a]
                                  speedups vs GPU and ELSA (Fig. 12)
  energy  [BENCH] [--variant f|c|a]
                                  energy-efficiency comparison (Fig. 13)
  simulate BENCH --retention R [--sigma S]
                                  raw cycle/energy report at a retention
  decode --context N --tokens T [--retention R]
                                  decoder-mode (KV-cache) analysis
  train BENCH [--retention R] [--seq N] [--samples K] [--epochs E]
        [--save FILE] [--metrics-out DIR]
                                  train a tiny model jointly with the
                                  detector, report accuracy, optionally
                                  checkpoint the adapted weights; with
                                  --metrics-out, write per-step metrics
                                  JSONL, a results JSON and a run manifest
                                  into DIR
  infer BENCH [--retention R] [--seq N] [--seed S]
                                  run one detector-filtered inference on a
                                  tiny preset and replay it on the
                                  simulator (pairs well with --trace)
  analyze BENCH [--retention R] [--seq N] [--seed S] [--top N] [--out FILE]
                                  run an instrumented inference and join
                                  host wall-clock/allocation profiles with
                                  the simulated counters into a bottleneck
                                  report: per-stage cycles and utilization,
                                  roofline classification, Amdahl
                                  attribution, top-N host hotspots; the
                                  JSON isolates volatile host data under
                                  \"host\" so two reports diff clean via
                                  `report diff` across machines/threads
  analyze --serve TIMELINE [--top N] [--out FILE]
                                  retention-degradation audit of a serve
                                  timeline (from `serve --timeline`): per
                                  retention tier, request counts and mean
                                  attended-position reduction; per request,
                                  the e2e latency decomposition
                                  (queue/prefill/decode and weight/KV/
                                  head-of-line); top-N worst deadline-budget
                                  burns; re-verifies every decomposition
                                  and attended count against the cost and
                                  window models and flags any drift
  report diff A B [--tol T] [--ignore K1,K2] [--allow-added]
                                  compare two runs (result files or run
                                  directories) value-by-value at relative
                                  tolerance T (default 1e-6); exits
                                  nonzero when regressions are found;
                                  --allow-added tolerates keys/files that
                                  exist only in run B (schema additions)
                                  while still failing on vanished ones
  serve [--bench] [--requests N] [--seed S] [--capacity C] [--queue N]
        [--seq N] [--load L | --loads L1,L2]
        [--shed queue|retention|slo|both]
        [--deadline-interactive US] [--deadline-batch US] [--out FILE]
        [--timeline FILE] [--slo-window N]
                                  continuous-batching inference load test
                                  on the simulated cycle clock: seeded
                                  heavy-tailed traffic, per-cell SLO
                                  histograms (queue wait, TTFT, inter-token,
                                  e2e); under overload, shed by admitting
                                  at sparser attention retention (DOTA's
                                  knob as a quality-for-latency trade) or
                                  queue at full quality; --bench sweeps
                                  load x policy and --out writes a
                                  byte-stable JSON report (diffable with
                                  report diff); --timeline records every
                                  request's cycle-timestamped lifecycle
                                  (queue/admit/prefill/per-step weight vs
                                  KV split, attended vs omitted positions)
                                  to a byte-stable JSON for `analyze
                                  --serve`, and mirrors it onto per-slot
                                  tracks of any live --trace session;
                                  --slo-window sets the rolling SLO
                                  monitor's window (completions; 0
                                  disables); --shed slo runs the
                                  closed-loop controller: rolling SLO burn
                                  and queue depth drive the admission
                                  retention rung (with hysteresis and a
                                  cooldown) plus an admission gate under
                                  sustained burn; env fallbacks:
                                  DOTA_SERVE_BATCH, DOTA_SERVE_DEADLINE,
                                  DOTA_SERVE_SHED, DOTA_SERVE_TIMELINE
  serve ... [--metrics-addr HOST:PORT] [--flight-out FILE]
                                  live telemetry plane: --metrics-addr
                                  serves Prometheus text exposition at
                                  /metrics (read-only snapshots of trace
                                  counters, histogram buckets and serve
                                  gauges: queue depth, occupancy, SLO
                                  burn, retention rung, admission gate,
                                  quarantined lanes, per-lane skew; the
                                  bound address is printed to stderr, port
                                  0 picks a free one; the endpoint stays
                                  up after the run until SIGTERM);
                                  --flight-out dumps the flight recorder —
                                  a bounded ring of cycle-stamped engine
                                  events (admissions, terminals, rung/gate
                                  flips, retries, quarantine) — as
                                  byte-deterministic JSON, also written to
                                  flight.json on typed failure or SIGTERM;
                                  env fallbacks: DOTA_SERVE_METRICS_ADDR,
                                  DOTA_SERVE_FLIGHT
  top --addr HOST:PORT [--interval-ms N] [--ticks N | --once]
                                  terminal dashboard polling a /metrics
                                  endpoint: occupancy, queue depth, SLO
                                  hit-rate/burn sparklines, retention
                                  rung, admission gate, per-lane retained
                                  work and skew; --ticks/--once bound the
                                  number of polls (and keep the output
                                  pipeable); env fallback:
                                  DOTA_SERVE_METRICS_ADDR
  serve --chaos [--shed queue|retention|slo] [--chaos-rates R1,R2]
        [--chaos-sites a,b] [--chaos-seed S] [--retry-cap N]
        [--retry-backoff CYCLES] [--quarantine CYCLES]
        [--ctl-burn-high X] [--ctl-burn-low X] [--ctl-cooldown N]
        [serve options] [--out FILE]
                                  chaos campaign: sweep serve-layer fault
                                  rates (slot.fail, kv.corrupt,
                                  decode.timeout) x offered load on
                                  identical seeded arrivals; failed decode
                                  steps retry with exponential cycle
                                  backoff up to --retry-cap before the
                                  request fails typed, and faulty lanes
                                  are quarantined then re-admitted via
                                  deterministic probes; prints and (with
                                  --out) writes a byte-stable availability
                                  report: served fraction, goodput,
                                  retries, quarantine occupancy, p99 e2e;
                                  env fallbacks: DOTA_SERVE_CHAOS (rate
                                  list), DOTA_SERVE_RETRY_CAP,
                                  DOTA_SERVE_RETRY_BACKOFF
  faults [--seed S] [--sites a,b] [--rates r1,r2] [--seq N] [--out FILE]
                                  deterministic fault-injection campaign:
                                  sweep (site, rate) cells, report whether
                                  each fault was absorbed or failed with a
                                  typed error; --out writes a seed-stable
                                  JSON report (diffable with report diff)

global options (any command):
  --trace FILE                    write a Chrome-trace JSON of the run
                                  (open in chrome://tracing or Perfetto)
  --counters FILE                 write the hardware-counter totals as JSON
  --hists FILE                    write attention/detector score histogram
                                  summaries (p50/p95/p99) as JSON
  --profile DIR                   profile host wall-clock/allocations and
                                  write DIR/profile.folded (flamegraph
                                  collapsed stacks) + DIR/profile.json
  --faults SITE=RATE[,...]        run the command under deterministic
                                  fault injection (sites: sram.bitflip,
                                  dram.read, lane.stuck, detector.corrupt,
                                  detector.saturate, attn.input,
                                  train.loss)
  --fault-seed S                  seed for --faults decisions (default 0)
BENCH: qa | image | text | retrieval | lm";

fn parse_benchmark(s: &str) -> Result<Benchmark, String> {
    match s.to_ascii_lowercase().as_str() {
        "qa" => Ok(Benchmark::Qa),
        "image" => Ok(Benchmark::Image),
        "text" => Ok(Benchmark::Text),
        "retrieval" => Ok(Benchmark::Retrieval),
        "lm" => Ok(Benchmark::Lm),
        other => Err(format!("unknown benchmark `{other}`")),
    }
}

fn parse_variant(s: &str) -> Result<OperatingPoint, String> {
    match s.to_ascii_lowercase().as_str() {
        "f" | "full" | "dota-f" => Ok(OperatingPoint::Full),
        "c" | "conservative" | "dota-c" => Ok(OperatingPoint::Conservative),
        "a" | "aggressive" | "dota-a" => Ok(OperatingPoint::Aggressive),
        other => Err(format!("unknown variant `{other}` (use f|c|a)")),
    }
}

/// Extracts `--flag value` from an argument list; returns remaining
/// positional arguments.
fn parse_flags(
    args: &[String],
) -> Result<(Vec<String>, std::collections::BTreeMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = std::collections::BTreeMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_owned(), value.clone());
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn flag_f64(
    flags: &std::collections::BTreeMap<String, String>,
    name: &str,
) -> Result<Option<f64>, String> {
    flags
        .get(name)
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| format!("--{name} must be a number"))
        })
        .transpose()
}

fn flag_usize(
    flags: &std::collections::BTreeMap<String, String>,
    name: &str,
) -> Result<Option<usize>, String> {
    flags
        .get(name)
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("--{name} must be an integer"))
        })
        .transpose()
}

fn cmd_table2() -> Result<(), String> {
    println!(
        "{:<18} {:<34} {:>10} {:>10}",
        "module", "configuration", "power mW", "area mm2"
    );
    for m in energy::table2() {
        println!(
            "{:<18} {:<34} {:>10.2} {:>10.3}",
            m.name, m.configuration, m.power_mw, m.area_mm2
        );
    }
    println!(
        "total: {:.2} W, {:.3} mm2",
        energy::total_power_w(),
        energy::total_area_mm2()
    );
    Ok(())
}

fn selected_benchmarks(positional: &[String]) -> Result<Vec<Benchmark>, String> {
    if positional.is_empty() {
        Ok(Benchmark::ALL.to_vec())
    } else {
        positional.iter().map(|s| parse_benchmark(s)).collect()
    }
}

fn cmd_speedup(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let variants = match flags.get("variant") {
        Some(v) => vec![parse_variant(v)?],
        None => vec![OperatingPoint::Conservative, OperatingPoint::Aggressive],
    };
    let system = DotaSystem::paper_default();
    println!(
        "{:>10} {:>8} {:>9} {:>12} {:>13} {:>9} {:>11}",
        "benchmark",
        "variant",
        "retention",
        "attn vs GPU",
        "attn vs ELSA",
        "e2e GPU",
        "upper bound"
    );
    for b in selected_benchmarks(&positional)? {
        for &v in &variants {
            let row = system.speedup_row(b, v);
            println!(
                "{:>10} {:>8} {:>8.1}% {:>11.1}x {:>12.1}x {:>8.1}x {:>10.1}x",
                row.benchmark,
                row.variant,
                row.retention * 100.0,
                row.attention_vs_gpu,
                row.attention_vs_elsa,
                row.end_to_end_vs_gpu,
                row.upper_bound_vs_gpu
            );
        }
    }
    Ok(())
}

fn cmd_energy(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let variants = match flags.get("variant") {
        Some(v) => vec![parse_variant(v)?],
        None => vec![OperatingPoint::Conservative, OperatingPoint::Aggressive],
    };
    let system = DotaSystem::paper_default();
    println!(
        "{:>10} {:>8} {:>12} {:>14} {:>12}",
        "benchmark", "variant", "vs GPU", "vs ELSA(attn)", "DOTA mJ/inf"
    );
    for b in selected_benchmarks(&positional)? {
        for &v in &variants {
            let row = system.energy_row(b, v);
            println!(
                "{:>10} {:>8} {:>11.0}x {:>13.2}x {:>12.3}",
                row.benchmark, row.variant, row.vs_gpu, row.vs_elsa_attention, row.dota_mj
            );
        }
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let bench = positional
        .first()
        .ok_or("simulate needs a benchmark")
        .and_then(|s| parse_benchmark(s).map_err(|_| "simulate needs a valid benchmark"))
        .map_err(str::to_owned)?;
    let retention = flag_f64(&flags, "retention")?.unwrap_or(0.1);
    let sigma = flag_f64(&flags, "sigma")?.unwrap_or(presets::SIGMA);
    let model = presets::paper_model(bench);
    let n = bench.paper_seq_len();
    let acc = Accelerator::new(AccelConfig::gpu_comparable());
    let rep = acc.simulate_shape(&model, n, retention, sigma, &SelectionProfile::default());
    println!(
        "benchmark {} (seq {n}), retention {:.1}%, sigma {sigma}",
        bench.name(),
        retention * 100.0
    );
    println!(
        "cycles: linear {} | detection {} | attention {} | ffn {} | total {}",
        rep.cycles.linear,
        rep.cycles.detection,
        rep.cycles.attention,
        rep.cycles.ffn,
        rep.cycles.total()
    );
    println!(
        "latency: {:.3} ms; attention block {:.3} ms",
        rep.seconds() * 1e3,
        rep.attention_seconds() * 1e3
    );
    println!(
        "K/V loads: {} (row-by-row would be {})",
        rep.key_loads, rep.key_loads_row_by_row
    );
    let e = &rep.energy;
    println!(
        "energy (mJ): rmmu {:.2} | mfu {:.2} | sched {:.3} | accum {:.2} | sram {:.2} | dram {:.2} | total {:.2}",
        e.rmmu_pj * 1e-9, e.mfu_pj * 1e-9, e.scheduler_pj * 1e-9, e.accumulator_pj * 1e-9,
        e.sram_pj * 1e-9, e.dram_pj * 1e-9, e.total_pj() * 1e-9
    );
    Ok(())
}

fn cmd_decode(args: &[String]) -> Result<(), String> {
    let (_, flags) = parse_flags(args)?;
    let context = flag_usize(&flags, "context")?.unwrap_or(4096);
    let tokens = flag_usize(&flags, "tokens")?.unwrap_or(32);
    let retention = flag_f64(&flags, "retention")?.unwrap_or(0.1);
    let model = dota_transformer::TransformerConfig::gpt2(context + tokens);
    let cfg = AccelConfig::default();
    let dense = simulate_decode(&cfg, &model, context, tokens, 1.0, 0.0);
    let sparse = simulate_decode(&cfg, &model, context, tokens, retention, presets::SIGMA);
    println!("decode: GPT-2 shape, context {context}, {tokens} generated tokens");
    println!(
        "dense: {:.0} us/token ({:.1}% K/V traffic); DOTA @ {:.0}%: {:.0} us/token; speedup {:.2}x",
        dense.us_per_token(tokens),
        100.0 * dense.kv_stream_cycles as f64 / dense.cycles as f64,
        retention * 100.0,
        sparse.us_per_token(tokens),
        dense.seconds() / sparse.seconds()
    );
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let bench = positional
        .first()
        .ok_or("train needs a benchmark".to_owned())
        .and_then(|s| parse_benchmark(s))?;
    let retention = flag_f64(&flags, "retention")?.unwrap_or(0.25);
    let seq = flag_usize(&flags, "seq")?.unwrap_or(24);
    let samples = flag_usize(&flags, "samples")?.unwrap_or(400);
    let epochs = flag_usize(&flags, "epochs")?.unwrap_or(20);
    let seed = 5u64;
    let metrics_out = flags.get("metrics-out").cloned();
    let started = std::time::Instant::now();
    println!(
        "training {} (seq {seq}, {samples} samples, {epochs} epochs) with DOTA at {:.1}% retention...",
        bench.name(),
        retention * 100.0
    );
    let mut sink = if metrics_out.is_some() {
        MetricsSink::new()
    } else {
        MetricsSink::disabled()
    };
    let run = BenchmarkRun::train_logged(
        bench,
        seq,
        samples,
        100,
        DetectorConfig::new(retention).with_sigma(0.5),
        &TrainOptions {
            epochs,
            warmup_epochs: (epochs / 5).max(1),
            lr_warmup_steps: 600,
            ..Default::default()
        },
        seed,
        &mut sink,
    )
    .map_err(|e| format!("training failed: {e}"))?;
    println!("{:>8} {:>10} {:>12}", "method", "accuracy", "perplexity");
    let mut method_rows: Vec<serde_json::Value> = Vec::new();
    for (name, method, r) in [
        ("dense", Method::Dense, 1.0),
        ("DOTA", Method::Dota, retention),
        ("oracle", Method::Oracle, retention),
        ("ELSA", Method::Elsa, retention),
        ("random", Method::Random, retention),
    ] {
        let p = run.evaluate(method, r, 1);
        match p.perplexity {
            Some(ppl) => println!("{name:>8} {:>10.3} {ppl:>12.2}", p.accuracy),
            None => println!("{name:>8} {:>10.3} {:>12}", p.accuracy, "-"),
        }
        method_rows.push(serde_json::Value::Object(vec![
            ("method".to_owned(), serde_json::Value::Str(name.to_owned())),
            ("retention".to_owned(), serde_json::Value::Float(r)),
            ("accuracy".to_owned(), serde_json::Value::Float(p.accuracy)),
            (
                "perplexity".to_owned(),
                match p.perplexity {
                    Some(ppl) => serde_json::Value::Float(ppl),
                    None => serde_json::Value::Null,
                },
            ),
        ]));
    }
    if let Some(dir) = &metrics_out {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        sink.write_jsonl(&dir.join("metrics.jsonl"))
            .map_err(|e| format!("writing metrics.jsonl: {e}"))?;
        let results = serde_json::Value::Object(vec![
            (
                "benchmark".to_owned(),
                serde_json::Value::Str(bench.name().to_owned()),
            ),
            ("methods".to_owned(), serde_json::Value::Array(method_rows)),
        ]);
        std::fs::write(
            dir.join("train_results.json"),
            serde_json::to_string_pretty(&results).map_err(|e| e.to_string())?,
        )
        .map_err(|e| format!("writing train_results.json: {e}"))?;
        let mut manifest = Manifest::collect("train")
            .with_seed(seed)
            .with_config("benchmark", bench.name())
            .with_config("retention", retention)
            .with_config("seq", seq)
            .with_config("samples", samples)
            .with_config("epochs", epochs);
        if cfg!(feature = "parallel") {
            manifest = manifest.with_feature("parallel");
        }
        if dota_trace::enabled() {
            manifest.counters = dota_trace::counters_snapshot();
        }
        manifest.wall_clock_secs = started.elapsed().as_secs_f64();
        manifest
            .write(&dir.join("manifest.json"))
            .map_err(|e| format!("writing manifest.json: {e}"))?;
        eprintln!(
            "[metrics ({} steps), results and manifest written to {}]",
            sink.len(),
            dir.display()
        );
    }
    if let Some(path) = flags.get("save") {
        dota_core::checkpoint::save_params(&run.dota_params, std::path::Path::new(path))
            .map_err(|e| e.to_string())?;
        println!("adapted weights saved to {path}");
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let allow_added = take_bool_flag(&mut args, "--allow-added");
    let (positional, flags) = parse_flags(&args)?;
    match positional.first().map(String::as_str) {
        Some("diff") => {
            let a = positional
                .get(1)
                .ok_or("report diff needs two paths: dota report diff <run-a> <run-b>")?;
            let b = positional
                .get(2)
                .ok_or("report diff needs two paths: dota report diff <run-a> <run-b>")?;
            let mut opts = report::DiffOptions {
                allow_added,
                ..Default::default()
            };
            if let Some(t) = flag_f64(&flags, "tol")? {
                if t.is_nan() || t < 0.0 {
                    return Err("--tol must be a non-negative number".to_owned());
                }
                opts.tolerance = t;
            }
            if let Some(extra) = flags.get("ignore") {
                opts.ignore_keys.extend(
                    extra
                        .split(',')
                        .filter(|k| !k.is_empty())
                        .map(str::to_owned),
                );
            }
            let rep = report::diff_paths(std::path::Path::new(a), std::path::Path::new(b), &opts)?;
            print!("{}", rep.render());
            if rep.has_regressions() {
                return Err(format!("{} regression(s) found", rep.findings.len()));
            }
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown report subcommand `{other}` (try `dota report diff A B`)"
        )),
        None => {
            Err("usage: dota report diff <run-a> <run-b> [--tol T] [--ignore K1,K2]".to_owned())
        }
    }
}

/// One detector-filtered inference on a tiny preset, replayed on the
/// simulator. Shared by `dota infer` and `dota analyze`; the build,
/// forward and replay stages are profiled spans, so they show up both on
/// the Chrome-trace host track and in `--profile` flamegraphs.
struct InferRun {
    seq: usize,
    trace: dota_transformer::ForwardTrace,
    report: dota_accel::PerfReport,
}

fn run_infer_workload(
    bench: Benchmark,
    retention: f64,
    seq: usize,
    seed: u64,
) -> Result<InferRun, String> {
    let build = dota_prof::span("infer.build");
    let spec = TaskSpec::tiny(bench, seq, seed);
    let (_, test) = spec.generate_split(1, 1);
    let ids = test.samples()[0].ids.clone();
    let (model, mut params) = experiments::build_model(&spec, seed);
    let hook = DotaHook::init(
        DetectorConfig::new(retention).with_sigma(0.5),
        model.config(),
        &mut params,
    );
    drop(build);

    let trace = {
        let _span = dota_prof::span("infer.forward");
        model
            .try_infer(&params, &ids, &hook.inference(&params))
            .map_err(|e| format!("inference failed: {e}"))?
    };
    let report = {
        let _span = dota_prof::span("infer.replay");
        let acc = Accelerator::new(AccelConfig::default());
        acc.try_simulate_trace(model.config(), &trace)
            .map_err(|e| format!("simulation failed: {e}"))?
    };
    Ok(InferRun {
        seq: ids.len(),
        trace,
        report,
    })
}

fn cmd_infer(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let bench = positional
        .first()
        .ok_or("infer needs a benchmark".to_owned())
        .and_then(|s| parse_benchmark(s))?;
    let retention = flag_f64(&flags, "retention")?.unwrap_or(0.25);
    let seq = flag_usize(&flags, "seq")?.unwrap_or(16);
    let seed = flag_usize(&flags, "seed")?.unwrap_or(7) as u64;

    let run = run_infer_workload(bench, retention, seq, seed)?;
    if run.trace.fallback_dense > 0 {
        eprintln!(
            "[{} head(s) fell back to dense attention]",
            run.trace.fallback_dense
        );
    }
    println!(
        "infer {} (seq {}, seed {seed}): retention {:.1}% (configured {:.1}%)",
        bench.name(),
        run.seq,
        run.trace.retention() * 100.0,
        retention * 100.0
    );
    println!(
        "replayed on simulator: {} cycles, {} K/V loads ({} row-by-row), {:.3} uJ",
        run.report.cycles.total(),
        run.report.key_loads,
        run.report.key_loads_row_by_row,
        run.report.energy.total_pj() * 1e-6
    );
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    if let Some(timeline) = flags.get("serve") {
        if let Some(extra) = positional.first() {
            return Err(format!(
                "analyze --serve takes no benchmark argument, got `{extra}`"
            ));
        }
        return cmd_analyze_serve(timeline, &flags);
    }
    let bench = positional
        .first()
        .ok_or("analyze needs a benchmark".to_owned())
        .and_then(|s| parse_benchmark(s))?;
    let retention = flag_f64(&flags, "retention")?.unwrap_or(0.25);
    let seq = flag_usize(&flags, "seq")?.unwrap_or(16);
    let seed = flag_usize(&flags, "seed")?.unwrap_or(7) as u64;
    let top = flag_usize(&flags, "top")?.unwrap_or(10);
    let out_path = flags.get("out").cloned();

    // Reuse the global sessions when `--trace`/`--profile` opened them;
    // open private ones otherwise so the joined report always has both
    // counters and host spans to work from. (Opening a second session on
    // the same gate would deadlock, hence the `enabled()` checks.)
    let own_trace = (!dota_trace::enabled()).then(|| dota_trace::session("analyze"));
    let own_prof = (!dota_prof::enabled()).then(|| dota_prof::session("analyze"));

    let run = run_infer_workload(bench, retention, seq, seed)?;
    let counters = dota_trace::counters_snapshot();
    let spans = dota_prof::spans_snapshot();
    let alloc = dota_prof::alloc_stats();
    drop(own_prof);
    drop(own_trace);

    #[cfg(feature = "parallel")]
    let threads = dota_parallel::num_threads();
    #[cfg(not(feature = "parallel"))]
    let threads = 1;

    let config = AccelConfig::default();
    let inputs = analyze::AnalyzeInputs {
        label: &format!("analyze.{}", bench.name()),
        counters: &counters,
        spans: &spans,
        alloc,
        config: &config,
        threads,
        top_hotspots: top,
    };
    let json = analyze::render(&inputs);

    println!(
        "analyze {} (seq {}, seed {seed}, retention {:.1}%): {} simulated cycles",
        bench.name(),
        run.seq,
        run.trace.retention() * 100.0,
        run.report.cycles.total()
    );
    let total = run.report.cycles.total().max(1);
    println!("{:<12} {:>12} {:>8}", "stage", "cycles", "share");
    for (name, cycles) in [
        ("linear", run.report.cycles.linear),
        ("detection", run.report.cycles.detection),
        ("attention", run.report.cycles.attention),
        ("ffn", run.report.cycles.ffn),
    ] {
        println!(
            "{:<12} {:>12} {:>7.1}%",
            name,
            cycles,
            cycles as f64 / total as f64 * 100.0
        );
    }
    let hot = analyze::hotspots(&spans, top);
    if !hot.is_empty() {
        println!(
            "host hotspots (threads {threads}, parallel fraction {:.2}):",
            analyze::parallel_fraction(&spans)
        );
        println!(
            "{:<40} {:>8} {:>10} {:>10}",
            "span", "count", "self ms", "total ms"
        );
        for h in &hot {
            println!(
                "{:<40} {:>8} {:>10.3} {:>10.3}",
                h.path, h.count, h.self_ms, h.total_ms
            );
        }
    }
    if let Some(p) = out_path {
        std::fs::write(&p, &json).map_err(|e| format!("writing analyze report {p}: {e}"))?;
        eprintln!("[analyze report written to {p}]");
    } else {
        print!("{json}");
    }
    Ok(())
}

/// `dota analyze --serve TIMELINE`: the retention-degradation audit —
/// joins a serve timeline (from `dota serve --timeline`) with the cost
/// and retention-window models and reports per-tier degradation, latency
/// decomposition and the worst deadline-budget burns.
fn cmd_analyze_serve(
    timeline: &str,
    flags: &std::collections::BTreeMap<String, String>,
) -> Result<(), String> {
    let top = flag_usize(flags, "top")?.unwrap_or(5);
    let raw = std::fs::read_to_string(timeline)
        .map_err(|e| format!("reading serve timeline {timeline}: {e}"))?;
    let doc =
        serde_json::parse(&raw).map_err(|e| format!("parsing serve timeline {timeline}: {e}"))?;
    let audit = dota_core::serve_audit::audit(&doc, top)?;
    print!("{}", audit.render_text());
    let consistent = audit
        .cells
        .iter()
        .all(|c| c.decomposition_consistent && c.ladder_consistent && c.terminals_consistent);
    if let Some(p) = flags.get("out") {
        std::fs::write(p, audit.to_json()).map_err(|e| format!("writing serve audit {p}: {e}"))?;
        eprintln!("[serve audit written to {p}]");
    }
    if !consistent {
        return Err(
            "serve timeline is inconsistent with the cost/window models (see audit above)"
                .to_owned(),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `body` with one environment variable set (or unset), restoring
    /// it afterwards; serialized because the environment is process-global.
    fn with_env<R>(name: &str, value: Option<&str>, body: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let prev = std::env::var(name).ok();
        match value {
            Some(v) => std::env::set_var(name, v),
            None => std::env::remove_var(name),
        }
        let out = body();
        match prev {
            Some(v) => std::env::set_var(name, v),
            None => std::env::remove_var(name),
        }
        out
    }

    #[test]
    fn invalid_dota_threads_is_rejected() {
        for bad in ["zero", "0", "-4"] {
            with_env("DOTA_THREADS", Some(bad), || {
                let err = validate_env().unwrap_err();
                assert!(err.contains("DOTA_THREADS"), "{err}");
            });
        }
        with_env("DOTA_THREADS", Some("8"), || validate_env().unwrap());
        with_env("DOTA_THREADS", None, || validate_env().unwrap());
    }

    #[test]
    fn empty_dota_trace_is_rejected() {
        with_env("DOTA_TRACE", Some("  "), || {
            let err = validate_env().unwrap_err();
            assert!(err.contains("DOTA_TRACE"), "{err}");
        });
        with_env("DOTA_TRACE", Some("/tmp/t.json"), || {
            validate_env().unwrap();
            assert_eq!(env_path("DOTA_TRACE").as_deref(), Some("/tmp/t.json"));
        });
    }

    #[test]
    fn empty_dota_hists_is_rejected() {
        with_env("DOTA_HISTS", Some(""), || {
            let err = validate_env().unwrap_err();
            assert!(err.contains("DOTA_HISTS"), "{err}");
        });
        with_env("DOTA_HISTS", None, || validate_env().unwrap());
    }

    #[test]
    fn empty_dota_prof_is_rejected() {
        with_env("DOTA_PROF", Some(" "), || {
            let err = validate_env().unwrap_err();
            assert!(err.contains("DOTA_PROF"), "{err}");
        });
        with_env("DOTA_PROF", Some("/tmp/prof"), || {
            validate_env().unwrap();
            assert_eq!(env_path("DOTA_PROF").as_deref(), Some("/tmp/prof"));
        });
        with_env("DOTA_PROF", None, || validate_env().unwrap());
    }

    #[test]
    fn empty_dota_counters_is_rejected() {
        with_env("DOTA_COUNTERS", Some(""), || {
            let err = validate_env().unwrap_err();
            assert!(err.contains("DOTA_COUNTERS"), "{err}");
        });
    }

    #[test]
    fn invalid_dota_gemm_is_rejected() {
        with_env("DOTA_GEMM", Some("fast"), || {
            let err = validate_env().unwrap_err();
            assert!(err.contains("DOTA_GEMM"), "{err}");
        });
        for ok in ["auto", "scalar"] {
            with_env("DOTA_GEMM", Some(ok), || validate_env().unwrap());
        }
        with_env("DOTA_GEMM", None, || validate_env().unwrap());
    }

    #[test]
    fn invalid_dota_serve_batch_is_rejected() {
        for bad in ["0", "-2", "many", "1.5"] {
            with_env("DOTA_SERVE_BATCH", Some(bad), || {
                let err = validate_env().unwrap_err();
                assert!(err.contains("DOTA_SERVE_BATCH"), "{err}");
            });
        }
        with_env("DOTA_SERVE_BATCH", Some("16"), || validate_env().unwrap());
        with_env("DOTA_SERVE_BATCH", None, || validate_env().unwrap());
    }

    #[test]
    fn invalid_dota_serve_deadline_is_rejected() {
        for bad in ["0", "-50", "soon", "inf"] {
            with_env("DOTA_SERVE_DEADLINE", Some(bad), || {
                let err = validate_env().unwrap_err();
                assert!(err.contains("DOTA_SERVE_DEADLINE"), "{err}");
            });
        }
        with_env("DOTA_SERVE_DEADLINE", Some("75.5"), || {
            validate_env().unwrap()
        });
    }

    #[test]
    fn invalid_dota_serve_shed_is_rejected() {
        for bad in ["drop", "none", ""] {
            with_env("DOTA_SERVE_SHED", Some(bad), || {
                let err = validate_env().unwrap_err();
                assert!(err.contains("DOTA_SERVE_SHED"), "{err}");
            });
        }
        for ok in ["queue", "retention", "slo", "both", "Queue-Only"] {
            with_env("DOTA_SERVE_SHED", Some(ok), || validate_env().unwrap());
        }
    }

    #[test]
    fn invalid_dota_serve_chaos_is_rejected() {
        for bad in ["", "lots", "0.5,nan", "-0.1", "1.5", "0.2;0.4"] {
            with_env("DOTA_SERVE_CHAOS", Some(bad), || {
                let err = validate_env().unwrap_err();
                assert!(err.contains("DOTA_SERVE_CHAOS"), "{err}");
            });
        }
        for ok in ["0", "0.0,0.05,0.2", " 0.1 , 1 "] {
            with_env("DOTA_SERVE_CHAOS", Some(ok), || validate_env().unwrap());
        }
        with_env("DOTA_SERVE_CHAOS", None, || validate_env().unwrap());
    }

    #[test]
    fn invalid_dota_serve_retry_cap_is_rejected() {
        for bad in ["-1", "many", "2.5", ""] {
            with_env("DOTA_SERVE_RETRY_CAP", Some(bad), || {
                let err = validate_env().unwrap_err();
                assert!(err.contains("DOTA_SERVE_RETRY_CAP"), "{err}");
            });
        }
        for ok in ["0", "3", "10"] {
            with_env("DOTA_SERVE_RETRY_CAP", Some(ok), || validate_env().unwrap());
        }
    }

    #[test]
    fn invalid_dota_serve_retry_backoff_is_rejected() {
        for bad in ["0", "-100", "fast", ""] {
            with_env("DOTA_SERVE_RETRY_BACKOFF", Some(bad), || {
                let err = validate_env().unwrap_err();
                assert!(err.contains("DOTA_SERVE_RETRY_BACKOFF"), "{err}");
            });
        }
        with_env("DOTA_SERVE_RETRY_BACKOFF", Some("2000"), || {
            validate_env().unwrap()
        });
        with_env("DOTA_SERVE_RETRY_BACKOFF", None, || validate_env().unwrap());
    }

    #[test]
    fn empty_dota_serve_timeline_is_rejected() {
        for bad in ["", "  "] {
            with_env("DOTA_SERVE_TIMELINE", Some(bad), || {
                let err = validate_env().unwrap_err();
                assert!(err.contains("DOTA_SERVE_TIMELINE"), "{err}");
            });
        }
        with_env("DOTA_SERVE_TIMELINE", Some("/tmp/tl.json"), || {
            validate_env().unwrap();
            assert_eq!(
                env_path("DOTA_SERVE_TIMELINE").as_deref(),
                Some("/tmp/tl.json")
            );
        });
        with_env("DOTA_SERVE_TIMELINE", None, || validate_env().unwrap());
    }

    #[test]
    fn invalid_dota_serve_metrics_addr_is_rejected() {
        for bad in ["", "localhost", "127.0.0.1", ":9184", "127.0.0.1:port"] {
            with_env("DOTA_SERVE_METRICS_ADDR", Some(bad), || {
                let err = validate_env().unwrap_err();
                assert!(err.contains("DOTA_SERVE_METRICS_ADDR"), "{err}");
            });
        }
        for ok in ["127.0.0.1:9184", "0.0.0.0:0", " [::1]:8080 "] {
            with_env("DOTA_SERVE_METRICS_ADDR", Some(ok), || {
                validate_env().unwrap()
            });
        }
        with_env("DOTA_SERVE_METRICS_ADDR", None, || validate_env().unwrap());
    }

    #[test]
    fn empty_dota_serve_flight_is_rejected() {
        for bad in ["", "  "] {
            with_env("DOTA_SERVE_FLIGHT", Some(bad), || {
                let err = validate_env().unwrap_err();
                assert!(err.contains("DOTA_SERVE_FLIGHT"), "{err}");
            });
        }
        with_env("DOTA_SERVE_FLIGHT", Some("/tmp/flight.json"), || {
            validate_env().unwrap();
            assert_eq!(
                env_path("DOTA_SERVE_FLIGHT").as_deref(),
                Some("/tmp/flight.json")
            );
        });
        with_env("DOTA_SERVE_FLIGHT", None, || validate_env().unwrap());
    }

    #[test]
    fn global_faults_flag_is_rejected_for_campaigns() {
        let err = fault_session("faults", Some("sram.bitflip=1".to_owned()), None).unwrap_err();
        assert!(err.contains("dota faults"), "{err}");
    }
}
