use crate::presets::{self, OperatingPoint};
use dota_accel::elsa::ElsaModel;
use dota_accel::gpu::GpuModel;
use dota_accel::synth::SelectionProfile;
use dota_accel::{AccelConfig, Accelerator, PerfReport};
use dota_workloads::Benchmark;
use serde::Serialize;

/// The simulated DOTA system: accelerator + baselines, ready to produce the
/// paper's performance and energy comparisons (Figures 12–13).
#[derive(Debug, Clone)]
pub struct DotaSystem {
    accel: Accelerator,
    gpu: GpuModel,
    elsa: ElsaModel,
    profile: SelectionProfile,
}

/// One row of the Figure 12 speedup comparison.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Operating point name (DOTA-F/C/A).
    pub variant: String,
    /// Retention executed at.
    pub retention: f64,
    /// Attention-block speedup over the GPU (Fig. 12a).
    pub attention_vs_gpu: f64,
    /// Attention-block speedup over ELSA (Fig. 12a).
    pub attention_vs_elsa: f64,
    /// End-to-end speedup over the GPU (Fig. 12b).
    pub end_to_end_vs_gpu: f64,
    /// Amdahl upper bound: end-to-end speedup with free attention
    /// (Fig. 12b's red dots).
    pub upper_bound_vs_gpu: f64,
    /// Latency fractions of linear / attention / detection (Fig. 12c).
    pub latency_breakdown: LatencyFractions,
}

/// Normalized latency fractions of one simulated pass (Fig. 12c).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencyFractions {
    /// Linear transformations + FFN share.
    pub linear: f64,
    /// Sparse attention share.
    pub attention: f64,
    /// Detection share.
    pub detection: f64,
}

/// One row of the Figure 13 energy-efficiency comparison (inferences per
/// joule, normalized to the GPU).
#[derive(Debug, Clone, Serialize)]
pub struct EnergyRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Operating point name.
    pub variant: String,
    /// Energy-efficiency improvement over the GPU.
    pub vs_gpu: f64,
    /// Energy-efficiency improvement over ELSA (attention block only,
    /// since ELSA is attention-only hardware).
    pub vs_elsa_attention: f64,
    /// DOTA energy per inference in millijoules.
    pub dota_mj: f64,
}

impl DotaSystem {
    /// The §5.3 comparison setup: the GPU-comparable 12 TOPS DOTA build, a
    /// V100 GPU, and ELSA scaled to the same MAC budget.
    pub fn paper_default() -> Self {
        Self {
            accel: Accelerator::new(AccelConfig::gpu_comparable()),
            gpu: GpuModel::default(),
            elsa: ElsaModel::scaled(6.0),
            profile: SelectionProfile::default(),
        }
    }

    /// A system around a custom accelerator configuration.
    pub fn with_accel(config: AccelConfig) -> Self {
        let scale = config.scale;
        Self {
            accel: Accelerator::new(config),
            gpu: GpuModel::default(),
            elsa: ElsaModel::scaled(scale),
            profile: SelectionProfile::default(),
        }
    }

    /// The underlying accelerator simulator.
    pub fn accelerator(&self) -> &Accelerator {
        &self.accel
    }

    /// Simulates DOTA on a benchmark at an operating point.
    pub fn simulate(&self, benchmark: Benchmark, point: OperatingPoint) -> PerfReport {
        let model = presets::paper_model(benchmark);
        let n = benchmark.paper_seq_len();
        let retention = presets::retention(benchmark, point);
        let sigma = if matches!(point, OperatingPoint::Full) {
            0.0
        } else {
            presets::SIGMA
        };
        self.accel
            .simulate_shape(&model, n, retention, sigma, &self.profile)
    }

    /// Produces the Figure 12 row for a benchmark and operating point.
    pub fn speedup_row(&self, benchmark: Benchmark, point: OperatingPoint) -> SpeedupRow {
        let model = presets::paper_model(benchmark);
        let n = benchmark.paper_seq_len();
        let rep = self.simulate(benchmark, point);

        let dota_attn_s = rep.attention_seconds();
        let dota_total_s = rep.seconds();
        let gpu_attn_s = self.gpu.attention_seconds(&model, n) * model.n_layers as f64;
        let gpu_total_s = self.gpu.model_seconds(&model, n);
        let elsa_attn_s = self.elsa.attention_seconds(&model, n);

        // Amdahl bound: GPU time with attention removed, against DOTA's
        // non-attention time (attention assumed free on both sides).
        let dota_rest_s = dota_total_s - dota_attn_s;
        let upper = gpu_total_s / dota_rest_s.max(1e-12);

        let total = rep.cycles.total().max(1) as f64;
        SpeedupRow {
            benchmark: benchmark.name().to_owned(),
            variant: point.name().to_owned(),
            retention: rep.retention,
            attention_vs_gpu: gpu_attn_s / dota_attn_s.max(1e-12),
            attention_vs_elsa: elsa_attn_s / dota_attn_s.max(1e-12),
            end_to_end_vs_gpu: gpu_total_s / dota_total_s.max(1e-12),
            upper_bound_vs_gpu: upper,
            latency_breakdown: LatencyFractions {
                linear: (rep.cycles.linear + rep.cycles.ffn) as f64 / total,
                attention: rep.cycles.attention as f64 / total,
                detection: rep.cycles.detection as f64 / total,
            },
        }
    }

    /// Produces the Figure 13 row for a benchmark and operating point.
    pub fn energy_row(&self, benchmark: Benchmark, point: OperatingPoint) -> EnergyRow {
        let model = presets::paper_model(benchmark);
        let n = benchmark.paper_seq_len();
        let rep = self.simulate(benchmark, point);

        let dota_j = rep.energy.total_j();
        let gpu_j = self.gpu.energy_j(self.gpu.model_seconds(&model, n));
        let elsa_attn_j = self.elsa.attention_energy_j(&model, n);
        let dota_attn_j = (rep.attention_energy_pj * 1e-12).max(1e-15);

        EnergyRow {
            benchmark: benchmark.name().to_owned(),
            variant: point.name().to_owned(),
            vs_gpu: gpu_j / dota_j.max(1e-15),
            vs_elsa_attention: elsa_attn_j / dota_attn_j,
            dota_mj: dota_j * 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dota_c_attention_speedup_large_over_gpu() {
        // Fig. 12a: DOTA-C attention speedups over GPU are two to three
        // orders of magnitude at paper scale; the model should land in
        // double-to-triple digits on every benchmark.
        let sys = DotaSystem::paper_default();
        for b in Benchmark::ALL {
            let row = sys.speedup_row(b, OperatingPoint::Conservative);
            assert!(
                row.attention_vs_gpu > 20.0,
                "{b:?}: attention speedup {}",
                row.attention_vs_gpu
            );
            assert!(
                row.attention_vs_gpu < 3000.0,
                "{b:?}: implausibly high {}",
                row.attention_vs_gpu
            );
        }
    }

    #[test]
    fn dota_beats_elsa_on_attention() {
        // Fig. 12a: DOTA-C ≈ 4.5× ELSA on average; every benchmark > 1.
        let sys = DotaSystem::paper_default();
        let mut product = 1.0;
        let mut count = 0;
        for b in Benchmark::ALL {
            let row = sys.speedup_row(b, OperatingPoint::Conservative);
            assert!(
                row.attention_vs_elsa > 1.0,
                "{b:?}: {}",
                row.attention_vs_elsa
            );
            product *= row.attention_vs_elsa;
            count += 1;
        }
        let geomean = f64::powf(product, 1.0 / count as f64);
        assert!(geomean > 2.0, "geomean vs ELSA {geomean}");
    }

    #[test]
    fn aggressive_at_least_as_fast_as_conservative() {
        let sys = DotaSystem::paper_default();
        for b in Benchmark::ALL {
            let c = sys.speedup_row(b, OperatingPoint::Conservative);
            let a = sys.speedup_row(b, OperatingPoint::Aggressive);
            assert!(
                a.attention_vs_gpu >= c.attention_vs_gpu * 0.99,
                "{b:?}: A {} < C {}",
                a.attention_vs_gpu,
                c.attention_vs_gpu
            );
        }
    }

    #[test]
    fn end_to_end_below_upper_bound() {
        // Fig. 12b: measured end-to-end speedup is below (but within reach
        // of) the Amdahl upper bound.
        let sys = DotaSystem::paper_default();
        for b in Benchmark::ALL {
            let row = sys.speedup_row(b, OperatingPoint::Conservative);
            assert!(
                row.end_to_end_vs_gpu <= row.upper_bound_vs_gpu,
                "{b:?}: e2e {} above bound {}",
                row.end_to_end_vs_gpu,
                row.upper_bound_vs_gpu
            );
            assert!(
                row.end_to_end_vs_gpu > 1.0,
                "{b:?}: e2e {}",
                row.end_to_end_vs_gpu
            );
        }
    }

    #[test]
    fn latency_breakdown_detection_small() {
        // Fig. 12c: detection latency is a small share; after omission the
        // bottleneck shifts to the linear stages.
        let sys = DotaSystem::paper_default();
        for b in Benchmark::ALL {
            let row = sys.speedup_row(b, OperatingPoint::Conservative);
            let lb = row.latency_breakdown;
            assert!(lb.detection < 0.25, "{b:?}: detection {}", lb.detection);
            assert!(
                lb.linear > lb.attention,
                "{b:?}: linear {} should dominate attention {}",
                lb.linear,
                lb.attention
            );
            let sum = lb.linear + lb.attention + lb.detection;
            assert!((sum - 1.0).abs() < 1e-9, "{b:?}: fractions sum {sum}");
        }
    }

    #[test]
    fn full_attention_breakdown_dominated_by_attention() {
        // Fig. 12c DOTA-F bars: attention dominates when nothing is
        // omitted on long sequences.
        let sys = DotaSystem::paper_default();
        let row = sys.speedup_row(Benchmark::Retrieval, OperatingPoint::Full);
        assert!(
            row.latency_breakdown.attention > 0.5,
            "attention share {}",
            row.latency_breakdown.attention
        );
    }

    #[test]
    fn energy_efficiency_orders_of_magnitude_over_gpu() {
        // Fig. 13: DOTA-C is 618–5185× more energy-efficient than the GPU.
        let sys = DotaSystem::paper_default();
        for b in Benchmark::ALL {
            let row = sys.energy_row(b, OperatingPoint::Conservative);
            assert!(row.vs_gpu > 50.0, "{b:?}: vs GPU {}", row.vs_gpu);
            assert!(
                row.vs_elsa_attention > 1.0,
                "{b:?}: vs ELSA {}",
                row.vs_elsa_attention
            );
            assert!(row.dota_mj > 0.0);
        }
    }
}
