//! Operating points and paper-scale model shapes per benchmark.
//!
//! §5.3 defines three DOTA variants: **DOTA-F** computes the full attention
//! graph (no detection), **DOTA-C** (conservative) picks the retention with
//! accuracy degradation under 0.5%, and **DOTA-A** (aggressive) allows
//! 1.5%. The retention values below are read off the paper's Figure 11
//! accuracy sweeps.

use dota_transformer::TransformerConfig;
use dota_workloads::Benchmark;

/// The three evaluation variants of §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatingPoint {
    /// Full attention on DOTA hardware, no detection/omission.
    Full,
    /// Conservative: accuracy degradation < 0.5%.
    Conservative,
    /// Aggressive: accuracy degradation < 1.5%.
    Aggressive,
}

impl OperatingPoint {
    /// All operating points, least to most aggressive.
    pub const ALL: [OperatingPoint; 3] = [
        OperatingPoint::Full,
        OperatingPoint::Conservative,
        OperatingPoint::Aggressive,
    ];

    /// Display name used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            OperatingPoint::Full => "DOTA-F",
            OperatingPoint::Conservative => "DOTA-C",
            OperatingPoint::Aggressive => "DOTA-A",
        }
    }
}

/// Retention ratio of a benchmark at an operating point (from the paper's
/// Fig. 11 sweeps).
pub fn retention(benchmark: Benchmark, point: OperatingPoint) -> f64 {
    use Benchmark::*;
    use OperatingPoint::*;
    match (benchmark, point) {
        (_, Full) => 1.0,
        (Qa, Conservative) => 0.10,
        (Qa, Aggressive) => 0.06,
        (Image, Conservative) => 0.05,
        (Image, Aggressive) => 0.03,
        (Text, Conservative) => 0.03,
        (Text, Aggressive) => 0.01,
        (Retrieval, Conservative) => 0.03,
        (Retrieval, Aggressive) => 0.01,
        (Lm, Conservative) => 0.10,
        (Lm, Aggressive) => 0.08,
    }
}

/// ELSA's retention in the paper's performance comparison (§5.3 follows
/// the original ELSA setting of 20%).
pub const ELSA_RETENTION: f64 = 0.20;

/// The paper-scale model shape of a benchmark (§5.1): BERT-large for QA,
/// the LRA encoder for Image/Text/Retrieval, GPT-2 for LM.
pub fn paper_model(benchmark: Benchmark) -> TransformerConfig {
    let n = benchmark.paper_seq_len();
    match benchmark {
        Benchmark::Qa => TransformerConfig::bert_large(n),
        Benchmark::Image => TransformerConfig::lra(n, 10),
        Benchmark::Text => TransformerConfig::lra(n, 2),
        Benchmark::Retrieval => TransformerConfig::lra(n, 2),
        Benchmark::Lm => TransformerConfig::gpt2(n),
    }
}

/// The detector's dimension-reduction factor σ used in the paper's final
/// configuration (§5.5: σ = 0.2 suffices on Text; a safe default across
/// benchmarks).
pub const SIGMA: f64 = 0.2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggressive_at_most_conservative() {
        for b in Benchmark::ALL {
            let c = retention(b, OperatingPoint::Conservative);
            let a = retention(b, OperatingPoint::Aggressive);
            assert!(a <= c, "{b:?}: aggressive {a} > conservative {c}");
            assert!(
                c < ELSA_RETENTION + 1e-12,
                "{b:?}: DOTA-C must beat ELSA's 20%"
            );
            assert_eq!(retention(b, OperatingPoint::Full), 1.0);
        }
    }

    #[test]
    fn paper_models_have_paper_seq_lens() {
        for b in Benchmark::ALL {
            let m = paper_model(b);
            assert_eq!(m.seq_len, b.paper_seq_len(), "{b:?}");
            assert!(m.validate().is_ok());
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(OperatingPoint::Full.name(), "DOTA-F");
        assert_eq!(OperatingPoint::Conservative.name(), "DOTA-C");
        assert_eq!(OperatingPoint::Aggressive.name(), "DOTA-A");
    }
}
