//! Weight compression on the post-omission bottleneck (paper §5.3).
//!
//! After detection removes the attention cost, "the new performance
//! bottleneck is Linear computation, which can be optimized with weight
//! pruning and quantization. These classic NN optimization techniques can
//! be fluently transplanted on DOTA, because our system is designed on top
//! a GEMM accelerator with multi-precision arithmetic support and sparse
//! computation dataflow." This module implements both transplants:
//!
//! * [`fake_quantize_weights`] — post-training INT-k quantization of every
//!   linear weight (quantize→dequantize, so accuracy can be evaluated with
//!   the existing float pipeline while the RMMU would run the integer
//!   kernels natively);
//! * [`prune_weights`] — global magnitude pruning at a target sparsity.
//!
//! The accuracy impact is evaluated with the normal inference path; the
//! latency impact uses the RMMU's precision-throughput model (an INT8
//! linear stage runs 4× faster on the same PEs).

use dota_autograd::{ParamId, ParamSet};
use dota_quant::{Precision, Quantizer};
use dota_transformer::Model;

/// Which parameters a compression pass touches: the weight matrices of the
/// linear transformation and FFN stages (embeddings, layer norms, biases
/// and the classifier head are left alone, as is standard practice).
pub fn linear_weight_ids(model: &Model) -> Vec<ParamId> {
    let mut ids = Vec::new();
    for layer in &model.params().layers {
        ids.extend([
            layer.wq,
            layer.wk,
            layer.wv,
            layer.wo,
            layer.w_ff1,
            layer.w_ff2,
        ]);
    }
    ids
}

/// Post-training weight quantization: every linear weight is replaced by
/// its quantize→dequantize image at `precision`. Returns the number of
/// scalars touched.
pub fn fake_quantize_weights(model: &Model, params: &mut ParamSet, precision: Precision) -> usize {
    let quant = Quantizer::symmetric(precision);
    let mut touched = 0;
    for id in linear_weight_ids(model) {
        let q = quant.quantize(params.value(id));
        let deq = q.dequantize();
        touched += deq.len();
        *params.value_mut(id) = deq;
    }
    touched
}

/// Global magnitude pruning: zeroes the smallest-magnitude `sparsity`
/// fraction of all linear weights (one global threshold, as in classic
/// magnitude pruning). Returns the fraction actually zeroed.
///
/// # Panics
///
/// Panics if `sparsity` is not in `[0, 1)`.
pub fn prune_weights(model: &Model, params: &mut ParamSet, sparsity: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&sparsity),
        "sparsity {sparsity} out of range"
    );
    let ids = linear_weight_ids(model);
    let mut magnitudes: Vec<f32> = Vec::new();
    for &id in &ids {
        magnitudes.extend(params.value(id).iter().map(|x| x.abs()));
    }
    if magnitudes.is_empty() {
        return 0.0;
    }
    let cut = ((sparsity * magnitudes.len() as f64) as usize).min(magnitudes.len() - 1);
    magnitudes.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let threshold = magnitudes[cut];
    let mut zeroed = 0usize;
    let total = magnitudes.len();
    for &id in &ids {
        let m = params.value_mut(id);
        for v in m.iter_mut() {
            if v.abs() < threshold {
                *v = 0.0;
                zeroed += 1;
            }
        }
    }
    zeroed as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{self, TrainOptions};
    use dota_transformer::NoHook;
    use dota_workloads::{Benchmark, TaskSpec};

    fn trained_text() -> (Model, ParamSet, dota_workloads::Dataset) {
        let spec = TaskSpec::tiny(Benchmark::Text, 24, 5);
        let (train, test) = spec.generate_split(200, 100);
        let (model, mut params) = experiments::build_model(&spec, 5);
        experiments::train_dense(
            &model,
            &mut params,
            &train,
            &TrainOptions {
                epochs: 10,
                ..Default::default()
            },
        );
        (model, params, test)
    }

    #[test]
    fn int8_weights_accuracy_neutral() {
        let (model, params, test) = trained_text();
        let baseline = experiments::eval_accuracy(&model, &params, &test, &NoHook);
        let mut quantized = params.clone();
        let touched = fake_quantize_weights(&model, &mut quantized, Precision::Int8);
        assert!(touched > 0);
        let acc = experiments::eval_accuracy(&model, &quantized, &test, &NoHook);
        assert!(
            acc >= baseline - 0.02,
            "INT8 weights cost accuracy: {acc} vs {baseline}"
        );
    }

    #[test]
    fn int2_weights_degrade() {
        // Sanity: the knob is real — 2-bit weights visibly hurt.
        let (model, params, test) = trained_text();
        let baseline = experiments::eval_accuracy(&model, &params, &test, &NoHook);
        let mut quantized = params.clone();
        fake_quantize_weights(&model, &mut quantized, Precision::Int2);
        let acc = experiments::eval_accuracy(&model, &quantized, &test, &NoHook);
        assert!(
            acc < baseline,
            "INT2 weights should degrade: {acc} vs {baseline}"
        );
    }

    #[test]
    fn moderate_pruning_accuracy_neutral() {
        let (model, params, test) = trained_text();
        let baseline = experiments::eval_accuracy(&model, &params, &test, &NoHook);
        let mut pruned = params.clone();
        let frac = prune_weights(&model, &mut pruned, 0.3);
        assert!((0.2..0.4).contains(&frac), "zeroed fraction {frac}");
        let acc = experiments::eval_accuracy(&model, &pruned, &test, &NoHook);
        assert!(
            acc >= baseline - 0.05,
            "30% pruning cost too much: {acc} vs {baseline}"
        );
    }

    #[test]
    fn pruning_only_touches_linear_weights() {
        let (model, params, _) = trained_text();
        let mut pruned = params.clone();
        let _ = prune_weights(&model, &mut pruned, 0.5);
        // Embeddings and the head are untouched.
        let tp = model.params();
        assert_eq!(
            params.value(tp.token_embedding),
            pruned.value(tp.token_embedding)
        );
        assert_eq!(params.value(tp.w_head), pruned.value(tp.w_head));
        // Linear weights did change.
        assert_ne!(
            params.value(tp.layers[0].w_ff1),
            pruned.value(tp.layers[0].w_ff1)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_full_sparsity() {
        let (model, mut params, _) = trained_text();
        let _ = prune_weights(&model, &mut params, 1.0);
    }
}
