//! Accuracy experiment pipeline (paper §5.2, Table 1, Figure 11, Figure 14).
//!
//! The pipeline mirrors the paper's software methodology: start from a
//! model trained with dense attention, attach the detector, *jointly*
//! fine-tune model and detector with omission enabled (`L = L_model +
//! λ·L_MSE`, Eq. 6), then evaluate at a retention ratio against the
//! baselines (dense, post-hoc oracle top-k, ELSA, A3, random).

use dota_autograd::{Adam, Graph, Optimizer, ParamSet};
use dota_detector::{
    a3::A3Hook,
    elsa::ElsaHook,
    oracle::{OracleHook, RandomHook},
};
use dota_detector::{DetectorConfig, DotaHook};
use dota_metrics::MetricsSink;
use dota_tensor::ShapeError;
use dota_transformer::{InferenceHook, Model, NoHook, TransformerConfig};
use dota_workloads::{generators, metrics, Benchmark, Dataset, TaskSpec};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainOptions {
    /// Passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Weight λ of the detector's MSE loss (joint training only).
    pub lambda: f32,
    /// Initial epochs during which the detector trains (via `L_MSE`) but
    /// masking stays off, letting the estimator stabilize before the model
    /// adapts to sparse attention.
    pub warmup_epochs: usize,
    /// Learning-rate warmup: the rate ramps linearly from 0 over this many
    /// optimizer steps. Essential for stable training of the tiny
    /// post-layer-norm Transformers used in the experiments.
    pub lr_warmup_steps: usize,
    /// Stop when an epoch's mean loss falls below this threshold. Guards
    /// joint fine-tuning in particular: once `L_model` reaches zero, only
    /// the `L_MSE` gradient remains, whose degenerate minimum (shrink all
    /// scores to zero) destroys the attention pattern if training runs on.
    pub early_stop_loss: f32,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            epochs: 12,
            lr: 0.003,
            lambda: 0.5,
            warmup_epochs: 2,
            lr_warmup_steps: 300,
            early_stop_loss: 0.02,
        }
    }
}

impl TrainOptions {
    /// Learning rate at optimizer step `step` (1-based) under linear
    /// warmup.
    pub fn warmed_lr(&self, step: usize) -> f32 {
        if self.lr_warmup_steps == 0 {
            return self.lr;
        }
        self.lr * (step as f32 / self.lr_warmup_steps as f32).min(1.0)
    }
}

/// Builds the tiny trainable model matching a task spec.
pub fn build_model(spec: &TaskSpec, seed: u64) -> (Model, ParamSet) {
    let mut params = ParamSet::new();
    #[allow(unused_mut)]
    let mut cfg = if spec.benchmark.is_lm() {
        TransformerConfig::tiny_causal(spec.seq_len, spec.vocab_size)
    } else {
        TransformerConfig::tiny(spec.seq_len, spec.vocab_size, spec.n_classes)
    };
    let _ = &mut cfg; // pooling stays Mean for every tiny benchmark
    let model = Model::init(cfg, &mut params, seed);
    (model, params)
}

/// Trains with dense attention; returns per-epoch mean losses.
pub fn train_dense(
    model: &Model,
    params: &mut ParamSet,
    data: &Dataset,
    opts: &TrainOptions,
) -> Vec<f32> {
    train_dense_logged(model, params, data, opts, &mut MetricsSink::disabled())
}

/// [`train_dense`] with per-step telemetry: records `dense.loss`,
/// `dense.lr`, `dense.grad_norm` and `dense.grad_norm_max` into `sink`
/// (one row per optimizer step). Gradient norms are only computed while
/// the sink is enabled, so the silent path costs nothing extra.
pub fn train_dense_logged(
    model: &Model,
    params: &mut ParamSet,
    data: &Dataset,
    opts: &TrainOptions,
    sink: &mut MetricsSink,
) -> Vec<f32> {
    let _prof = dota_prof::span("train.dense");
    let mut opt = Adam::new(opts.lr).clip_norm(5.0);
    let mut losses = Vec::with_capacity(opts.epochs);
    let mut step = 0usize;
    for _ in 0..opts.epochs {
        let mut total = 0.0;
        for sample in data {
            step += 1;
            opt.set_lr(opts.warmed_lr(step));
            let mut g = Graph::new();
            let out = model.forward(&mut g, params, &sample.ids, &mut NoHook);
            let loss = if model.config().causal {
                model.lm_loss(&mut g, &out, &sample.ids)
            } else {
                model.classification_loss(&mut g, &out, sample.label)
            };
            let loss_val = g.value(loss)[(0, 0)];
            total += loss_val;
            g.backward(loss);
            if sink.enabled() {
                sink.log(&[
                    ("dense.loss", f64::from(loss_val)),
                    ("dense.lr", f64::from(opts.warmed_lr(step))),
                    ("dense.grad_norm", f64::from(params.grad_norm(&g))),
                    ("dense.grad_norm_max", f64::from(params.max_grad_norm(&g))),
                ]);
            }
            opt.step(params, &g);
        }
        let mean = total / data.len().max(1) as f32;
        losses.push(mean);
        if mean < opts.early_stop_loss {
            break;
        }
    }
    losses
}

/// Joint model-adaptation fine-tuning with the DOTA detector (Eq. 6).
///
/// Two phases, mirroring how the paper starts from a *pretrained* model:
///
/// 1. **Detector warm-up** (`warmup_epochs`): the model is frozen and only
///    the low-rank parameters train, minimizing `‖S − S̃‖²` against the
///    frozen model's scores. (Letting the MSE gradient loose on a fully
///    converged model would instead shrink `S` toward the degenerate
///    all-zero solution — `L_model` contributes no counter-pressure once
///    it reaches zero.)
/// 2. **Joint adaptation**: masking turns on and the full objective
///    `L_model + λ·L_MSE` trains model and detector together.
///
/// Returns per-epoch mean losses (phase 2 only counts toward early stop).
///
/// # Errors
///
/// [`ShapeError`] when the model and detector parameter shapes do not
/// conform (a corrupted checkpoint, for example).
pub fn train_joint(
    model: &Model,
    params: &mut ParamSet,
    hook: &mut DotaHook,
    data: &Dataset,
    opts: &TrainOptions,
) -> Result<Vec<f32>, ShapeError> {
    train_joint_logged(
        model,
        params,
        hook,
        data,
        opts,
        &mut MetricsSink::disabled(),
    )
}

/// [`train_joint`] with per-step telemetry. Phase 1 records
/// `warmup.detector_mse` / `warmup.grad_norm`; phase 2 records the Eq. 6
/// decomposition (`joint.loss`, `joint.model_loss`, `joint.detector_mse`),
/// the learning rate, gradient norms, and the per-layer retention ratio
/// the detector masks actually imposed (`joint.retention.L{l}`, averaged
/// over the layer's heads). All extra computation is gated on
/// [`MetricsSink::enabled`].
///
/// # Errors
///
/// [`ShapeError`] when the model and detector parameter shapes do not
/// conform (a corrupted checkpoint, for example).
pub fn train_joint_logged(
    model: &Model,
    params: &mut ParamSet,
    hook: &mut DotaHook,
    data: &Dataset,
    opts: &TrainOptions,
    sink: &mut MetricsSink,
) -> Result<Vec<f32>, ShapeError> {
    let _prof = dota_prof::span("train.joint");
    let mut losses = Vec::with_capacity(opts.epochs);

    // --- Phase 1: detector-only estimation pretraining. ---
    if opts.warmup_epochs > 0 {
        let mut opt = Adam::new(opts.lr).clip_norm(5.0);
        let cfg = model.config();
        let hd = cfg.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();
        for _ in 0..opts.warmup_epochs.min(opts.epochs) {
            let mut total = 0.0;
            for sample in data {
                // Frozen-model layer inputs and exact scores as constants.
                let xs = dota_detector::metrics::layer_inputs(model, params, &sample.ids);
                let mut g = Graph::new();
                let mut acc: Option<dota_autograd::Var> = None;
                for (l, x) in xs.iter().enumerate() {
                    let layer = &model.params().layers[l];
                    let q = x.matmul(params.value(layer.wq))?;
                    let k = x.matmul(params.value(layer.wk))?;
                    let xv = g.constant(x.clone());
                    for h in 0..cfg.n_heads {
                        let (c0, c1) = (h * hd, (h + 1) * hd);
                        let scores = q
                            .slice_cols(c0, c1)
                            .matmul_nt(&k.slice_cols(c0, c1))?
                            .scale(scale);
                        let target = g.constant(scores);
                        let s_tilde = hook.detector(l, h).estimated_scores(&mut g, params, xv);
                        let mse = g.mse(s_tilde, target);
                        acc = Some(match acc {
                            None => mse,
                            Some(a) => g.add(a, mse),
                        });
                    }
                }
                // A model with no layers/heads has no detector loss to
                // warm up on; skip the sample rather than panic.
                let Some(loss) = acc else { continue };
                let loss_val = g.value(loss)[(0, 0)];
                total += loss_val;
                g.backward(loss);
                if sink.enabled() {
                    sink.log(&[
                        ("warmup.detector_mse", f64::from(loss_val)),
                        ("warmup.grad_norm", f64::from(params.grad_norm(&g))),
                    ]);
                }
                opt.step(params, &g);
            }
            losses.push(total / data.len().max(1) as f32);
        }
    }

    // --- Phase 2: joint adaptation with masking enabled. ---
    hook.set_masking(true);
    let mut opt = Adam::new(opts.lr).clip_norm(5.0);
    let mut step = 0usize;
    for _ in opts.warmup_epochs.min(opts.epochs)..opts.epochs {
        let mut total = 0.0;
        for sample in data {
            step += 1;
            opt.set_lr(opts.warmed_lr(step));
            let mut g = Graph::new();
            let mut bound = hook.training(params);
            let out = model.forward(&mut g, params, &sample.ids, &mut bound);
            let model_loss = if model.config().causal {
                model.lm_loss(&mut g, &out, &sample.ids)
            } else {
                model.classification_loss(&mut g, &out, sample.label)
            };
            let loss = model.total_loss(&mut g, model_loss, &out, opts.lambda);
            let loss_val = g.value(loss)[(0, 0)];
            total += loss_val;
            g.backward(loss);
            if sink.enabled() {
                let mse_mean = if out.aux_losses.is_empty() {
                    0.0
                } else {
                    out.aux_losses
                        .iter()
                        .map(|&a| f64::from(g.value(a)[(0, 0)]))
                        .sum::<f64>()
                        / out.aux_losses.len() as f64
                };
                let mut row: Vec<(String, f64)> = vec![
                    ("joint.loss".to_owned(), f64::from(loss_val)),
                    (
                        "joint.model_loss".to_owned(),
                        f64::from(g.value(model_loss)[(0, 0)]),
                    ),
                    ("joint.detector_mse".to_owned(), mse_mean),
                    ("joint.lr".to_owned(), f64::from(opts.warmed_lr(step))),
                    (
                        "joint.grad_norm".to_owned(),
                        f64::from(params.grad_norm(&g)),
                    ),
                    (
                        "joint.grad_norm_max".to_owned(),
                        f64::from(params.max_grad_norm(&g)),
                    ),
                ];
                let n_layers = model.config().n_layers;
                for l in 0..n_layers {
                    let stats: Vec<_> = out.mask_stats.iter().filter(|s| s.layer == l).collect();
                    if !stats.is_empty() {
                        let r =
                            stats.iter().map(|s| s.retention()).sum::<f64>() / stats.len() as f64;
                        row.push((format!("joint.retention.L{l}"), r));
                    }
                }
                let refs: Vec<(&str, f64)> = row.iter().map(|(k, v)| (k.as_str(), *v)).collect();
                sink.log(&refs);
            }
            opt.step(params, &g);
        }
        let mean = total / data.len().max(1) as f32;
        losses.push(mean);
        if mean < opts.early_stop_loss {
            break;
        }
    }
    Ok(losses)
}

/// Runs `per_sample` over every sample of `data`, in input order — fanned
/// out across worker threads with the `parallel` feature (sequences are
/// independent at inference time), serially otherwise. Both paths produce
/// the same vector, so every evaluation metric built on this is identical
/// with and without the feature.
fn map_samples<R: Send>(
    data: &Dataset,
    per_sample: impl Fn(&dota_workloads::Sample) -> R + Sync,
) -> Vec<R> {
    let samples = data.samples();
    #[cfg(feature = "parallel")]
    return dota_parallel::par_map(samples, |_, s| per_sample(s));
    #[cfg(not(feature = "parallel"))]
    samples.iter().map(per_sample).collect()
}

/// Per-sample `(prediction, label)` pairs under an inference hook.
fn eval_pairs(
    model: &Model,
    params: &ParamSet,
    data: &Dataset,
    hook: &dyn InferenceHook,
) -> Vec<(usize, usize)> {
    let _prof = dota_prof::span("eval.classify");
    map_samples(data, |s| {
        let trace = model.infer(params, &s.ids, hook);
        (trace.predicted_class(), s.label)
    })
}

/// Classification accuracy of `model` on `data` under an inference hook.
pub fn eval_accuracy(
    model: &Model,
    params: &ParamSet,
    data: &Dataset,
    hook: &dyn InferenceHook,
) -> f64 {
    metrics::accuracy(&eval_pairs(model, params, data, hook))
}

/// Macro-F1 of `model` on `data` (the QA metric).
pub fn eval_f1(model: &Model, params: &ParamSet, data: &Dataset, hook: &dyn InferenceHook) -> f64 {
    metrics::macro_f1(
        &eval_pairs(model, params, data, hook),
        data.spec().n_classes,
    )
}

/// Language-model evaluation result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmEval {
    /// Perplexity over all predicted positions (lower is better).
    pub perplexity: f64,
    /// Accuracy on the planted copy-recall position — the long-range
    /// dependency the task isolates.
    pub recall_accuracy: f64,
}

/// Evaluates a causal model: overall perplexity plus copy-recall accuracy.
///
/// Per-sequence statistics are computed independently (in parallel with the
/// `parallel` feature) and reduced in input order, so the result does not
/// depend on the execution schedule.
pub fn eval_lm(
    model: &Model,
    params: &ParamSet,
    data: &Dataset,
    hook: &dyn InferenceHook,
) -> LmEval {
    let _prof = dota_prof::span("eval.lm");
    // (nll contribution, predicted positions, recall hit at the planted
    // copy position — None when the sequence has no recall position).
    let stats: Vec<(f64, usize, Option<bool>)> = map_samples(data, |s| {
        let trace = model.infer(params, &s.ids, hook);
        let targets: Vec<usize> = s.ids[1..].to_vec();
        let logits = trace.logits.slice_rows(0, targets.len());
        let nll = metrics::mean_nll(&logits, &targets) * targets.len() as f64;
        let recall = generators::lm_recall_position(&s.ids).map(|pos| {
            // Position pos-1 predicts the token at pos.
            let row = logits.row(pos - 1);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            pred == s.ids[pos]
        });
        (nll, targets.len(), recall)
    });
    let mut nll_sum = 0.0;
    let mut nll_count = 0usize;
    let mut recall_hits = 0usize;
    let mut recall_total = 0usize;
    for (nll, count, recall) in stats {
        nll_sum += nll;
        nll_count += count;
        if let Some(hit) = recall {
            recall_total += 1;
            if hit {
                recall_hits += 1;
            }
        }
    }
    LmEval {
        perplexity: metrics::perplexity(nll_sum / nll_count.max(1) as f64),
        recall_accuracy: recall_hits as f64 / recall_total.max(1) as f64,
    }
}

/// Selection method evaluated in the Figure 11 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Dense attention (the baseline accuracy).
    Dense,
    /// DOTA: jointly-trained quantized low-rank detector.
    Dota,
    /// Post-hoc exact top-k (Table 1's oracle).
    Oracle,
    /// ELSA's sign-random-projection approximation (training-free).
    Elsa,
    /// A3's sorted-dimension approximation (training-free).
    A3,
    /// Uniform random selection (sanity floor).
    Random,
}

/// One accuracy-vs-retention measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyPoint {
    /// The selection method.
    pub method: Method,
    /// Retention ratio evaluated at.
    pub retention: f64,
    /// Classification accuracy (or copy-recall accuracy for LM).
    pub accuracy: f64,
    /// Perplexity for LM benchmarks (`None` otherwise).
    pub perplexity: Option<f64>,
}

/// A fully-trained benchmark instance: dense-trained weights plus a
/// jointly-adapted (weights, detector) pair, ready to evaluate any method
/// at the configured retention.
pub struct BenchmarkRun {
    /// The benchmark evaluated.
    pub benchmark: Benchmark,
    /// The model architecture (shared by both parameter sets).
    pub model: Model,
    /// Dense-trained parameters (baselines evaluate on these).
    pub dense_params: ParamSet,
    /// Jointly-adapted parameters (DOTA evaluates on these).
    pub dota_params: ParamSet,
    /// The trained detector bank.
    pub hook: DotaHook,
    /// Held-out evaluation set.
    pub test: Dataset,
}

impl BenchmarkRun {
    /// Runs the full pipeline for `benchmark` at sequence length `seq_len`:
    /// generate data, train dense, clone, jointly adapt with the detector
    /// at `detector_cfg.retention`.
    ///
    /// # Errors
    ///
    /// [`ShapeError`] when the model and detector parameter shapes do not
    /// conform.
    pub fn train(
        benchmark: Benchmark,
        seq_len: usize,
        train_samples: usize,
        test_samples: usize,
        detector_cfg: DetectorConfig,
        opts: &TrainOptions,
        seed: u64,
    ) -> Result<Self, ShapeError> {
        Self::train_logged(
            benchmark,
            seq_len,
            train_samples,
            test_samples,
            detector_cfg,
            opts,
            seed,
            &mut MetricsSink::disabled(),
        )
    }

    /// [`BenchmarkRun::train`] with per-step telemetry: the dense
    /// pretraining and both joint phases log into one continuous `sink`
    /// (steps are 1-based across the whole pipeline). See
    /// [`train_dense_logged`] and [`train_joint_logged`] for the metric
    /// names.
    ///
    /// # Errors
    ///
    /// [`ShapeError`] when the model and detector parameter shapes do not
    /// conform.
    #[allow(clippy::too_many_arguments)]
    pub fn train_logged(
        benchmark: Benchmark,
        seq_len: usize,
        train_samples: usize,
        test_samples: usize,
        detector_cfg: DetectorConfig,
        opts: &TrainOptions,
        seed: u64,
        sink: &mut MetricsSink,
    ) -> Result<Self, ShapeError> {
        let spec = TaskSpec::tiny(benchmark, seq_len, seed);
        let (train, test) = spec.generate_split(train_samples, test_samples);
        let (model, mut dense_params) = build_model(&spec, seed);
        train_dense_logged(&model, &mut dense_params, &train, opts, sink);

        let mut dota_params = dense_params.clone();
        let mut hook = DotaHook::init(detector_cfg, model.config(), &mut dota_params);
        train_joint_logged(&model, &mut dota_params, &mut hook, &train, opts, sink)?;

        Ok(Self {
            benchmark,
            model,
            dense_params,
            dota_params,
            hook,
            test,
        })
    }

    /// Evaluates one method at `retention` on the held-out set.
    pub fn evaluate(&self, method: Method, retention: f64, seed: u64) -> AccuracyPoint {
        let (params, hook): (&ParamSet, Box<dyn InferenceHook + '_>) = match method {
            Method::Dense => (&self.dense_params, Box::new(NoHook)),
            Method::Dota => (
                &self.dota_params,
                Box::new(self.hook.inference(&self.dota_params)),
            ),
            Method::Oracle => (
                &self.dense_params,
                Box::new(OracleHook::from_model(
                    &self.model,
                    &self.dense_params,
                    retention,
                )),
            ),
            Method::Elsa => (
                &self.dense_params,
                Box::new(ElsaHook::from_model(
                    &self.model,
                    &self.dense_params,
                    64,
                    retention,
                    seed,
                )),
            ),
            Method::A3 => {
                let dims = (self.model.config().head_dim() / 4).max(1);
                (
                    &self.dense_params,
                    Box::new(A3Hook::from_model(
                        &self.model,
                        &self.dense_params,
                        dims,
                        retention,
                    )),
                )
            }
            Method::Random => (
                &self.dense_params,
                Box::new(RandomHook::new(retention, seed)),
            ),
        };
        if self.benchmark.is_lm() {
            let lm = eval_lm(&self.model, params, &self.test, hook.as_ref());
            AccuracyPoint {
                method,
                retention,
                accuracy: lm.recall_accuracy,
                perplexity: Some(lm.perplexity),
            }
        } else {
            AccuracyPoint {
                method,
                retention,
                accuracy: eval_accuracy(&self.model, params, &self.test, hook.as_ref()),
                perplexity: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_training_learns_text_task() {
        let spec = TaskSpec::tiny(Benchmark::Text, 24, 7);
        let (train, test) = spec.generate_split(60, 40);
        let (model, mut params) = build_model(&spec, 7);
        let opts = TrainOptions {
            epochs: 10,
            ..Default::default()
        };
        let losses = train_dense(&model, &mut params, &train, &opts);
        assert!(losses.last().unwrap() < &losses[0], "loss not decreasing");
        let acc = eval_accuracy(&model, &params, &test, &NoHook);
        assert!(acc > 0.7, "dense accuracy {acc}");
    }

    #[test]
    fn joint_training_preserves_accuracy_under_omission() {
        let run = BenchmarkRun::train(
            Benchmark::Text,
            24,
            60,
            40,
            DetectorConfig::new(0.25),
            &TrainOptions {
                epochs: 10,
                warmup_epochs: 2,
                ..Default::default()
            },
            11,
        )
        .expect("training failed");
        let dense = run.evaluate(Method::Dense, 1.0, 1);
        let dota = run.evaluate(Method::Dota, 0.25, 1);
        assert!(dense.accuracy > 0.7, "dense {dense:?}");
        assert!(
            dota.accuracy >= dense.accuracy - 0.15,
            "DOTA at 25% retention lost too much: {dota:?} vs {dense:?}"
        );
        let random = run.evaluate(Method::Random, 0.25, 1);
        assert!(
            dota.accuracy >= random.accuracy,
            "DOTA {dota:?} should beat random {random:?}"
        );
    }

    #[test]
    fn lm_eval_reports_both_metrics() {
        let spec = TaskSpec::tiny(Benchmark::Lm, 24, 3);
        let (train, test) = spec.generate_split(30, 20);
        let (model, mut params) = build_model(&spec, 3);
        let opts = TrainOptions {
            epochs: 6,
            ..Default::default()
        };
        train_dense(&model, &mut params, &train, &opts);
        let eval = eval_lm(&model, &params, &test, &NoHook);
        assert!(eval.perplexity > 1.0 && eval.perplexity.is_finite());
        assert!((0.0..=1.0).contains(&eval.recall_accuracy));
    }

    #[test]
    fn oracle_beats_random_at_low_retention() {
        let spec = TaskSpec::tiny(Benchmark::Qa, 32, 5);
        let (train, test) = spec.generate_split(60, 30);
        let (model, mut params) = build_model(&spec, 5);
        train_dense(
            &model,
            &mut params,
            &train,
            &TrainOptions {
                // Enough epochs that the learned attention structure is real
                // signal (an undertrained model's scores are noise, and the
                // oracle has no advantage to exploit).
                epochs: 16,
                ..Default::default()
            },
        );
        let oracle = OracleHook::from_model(&model, &params, 0.25);
        let acc_oracle = eval_accuracy(&model, &params, &test, &oracle);
        let acc_random = eval_accuracy(&model, &params, &test, &RandomHook::new(0.25, 2));
        assert!(
            acc_oracle >= acc_random,
            "oracle {acc_oracle} vs random {acc_random}"
        );
    }
}
