//! Deterministic fault-injection campaigns.
//!
//! A campaign sweeps a grid of `(fault site, fault rate)` cells. Each cell
//! opens an exclusive [`dota_faults`] session and drives the workload the
//! site can actually reach:
//!
//! * hardware, detector and attention sites run a tiny Text model with a
//!   DOTA detector hook through [`Model::try_infer`] and the accelerator's
//!   `try_simulate_trace` (the fallible, fault-aware paths);
//! * the `train.loss` site runs dense training under the divergence
//!   watchdog ([`crate::watchdog::train_dense_guarded`]).
//!
//! Every cell ends in one of three states: **clean** (no fault fired),
//! **absorbed** (faults fired and the run still completed — ECC replay,
//! DRAM retry, lane re-routing, dense fallback or watchdog rollback), or
//! **failed** (a typed error surfaced). A panic is never an acceptable
//! outcome; the campaign tests pin that.
//!
//! Fault decisions hash `(seed, site, coordinates)` — they do not consume
//! a shared RNG stream — so a report is byte-identical for a given seed
//! regardless of thread count or build features. Cells run strictly
//! serially because fault sessions are globally exclusive.

use crate::checkpoint;
use crate::experiments::{build_model, TrainOptions};
use crate::watchdog::{train_dense_guarded, WatchdogOptions};
use dota_detector::{DetectorConfig, DotaHook};
use dota_faults::{FaultPlan, FaultSite};
use dota_metrics::{fmt_f64, write_json_string};
use dota_transformer::Model;
use dota_workloads::{Benchmark, TaskSpec};
use std::collections::BTreeMap;
use std::path::Path;

/// Report schema version (bumped on any change to the JSON layout).
pub const CAMPAIGN_VERSION: u32 = 1;

/// What to sweep.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Master seed: fault decisions, model init and data all derive from it.
    pub seed: u64,
    /// Sites to inject at (one sweep row per site).
    pub sites: Vec<FaultSite>,
    /// Fault rates to try per site (clamped to `[0, 1]`).
    pub rates: Vec<f64>,
    /// Sequence length of the probe workload (the synthetic tasks require
    /// at least 16).
    pub seq_len: usize,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        Self {
            seed: 0,
            // The inference probe exercises the model/accelerator sites;
            // serve-layer sites are swept by `dota serve --chaos` instead.
            sites: FaultSite::MODEL.to_vec(),
            rates: vec![0.0, 0.05, 1.0],
            seq_len: 16,
        }
    }
}

/// Terminal state of one campaign cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// No fault fired; outputs match the fault-free baseline.
    Clean,
    /// Faults fired and every one was absorbed by a degradation path.
    Absorbed,
    /// A typed error surfaced (never a panic).
    Failed,
}

impl RunStatus {
    /// Stable lower-case name used in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            RunStatus::Clean => "clean",
            RunStatus::Absorbed => "absorbed",
            RunStatus::Failed => "failed",
        }
    }
}

/// One `(site, rate)` cell of the sweep.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// Site injected at.
    pub site: FaultSite,
    /// Requested fault rate.
    pub rate: f64,
    /// How the run ended.
    pub status: RunStatus,
    /// Total `*.injected` events observed.
    pub injected: u64,
    /// All fault counters recorded during the session (sorted by name).
    pub counters: BTreeMap<String, u64>,
    /// Display of the typed error when `status == Failed`.
    pub error: Option<String>,
    /// Site-dependent outcome metric: simulated total cycles for the
    /// inference sites, final training loss for `train.loss`.
    pub outcome: f64,
}

/// A completed sweep.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Options the sweep ran with.
    pub options: CampaignOptions,
    /// One entry per `(site, rate)` cell, in sweep order.
    pub runs: Vec<CampaignRun>,
}

/// Runs the full sweep serially. Panics inside a cell are bugs by
/// definition and propagate; every modeled fault ends as a counter or a
/// typed error.
pub fn run_campaign(opts: &CampaignOptions) -> CampaignReport {
    let probe = InferProbe::build(opts.seed, opts.seq_len);
    let mut runs = Vec::with_capacity(opts.sites.len() * opts.rates.len());
    for &site in &opts.sites {
        for &rate in &opts.rates {
            runs.push(run_cell(opts, &probe, site, rate));
        }
    }
    CampaignReport {
        options: opts.clone(),
        runs,
    }
}

/// Fixed tiny workload shared by every inference-path cell.
struct InferProbe {
    model: Model,
    params: dota_autograd::ParamSet,
    hook: DotaHook,
    ids: Vec<usize>,
}

impl InferProbe {
    fn build(seed: u64, seq_len: usize) -> Self {
        let spec = TaskSpec::tiny(Benchmark::Text, seq_len, seed);
        let (model, mut params) = build_model(&spec, seed);
        let hook = DotaHook::init(DetectorConfig::new(0.25), model.config(), &mut params);
        let vocab = model.config().vocab_size;
        let ids = (0..seq_len).map(|i| (i * 7 + 3) % vocab).collect();
        Self {
            model,
            params,
            hook,
            ids,
        }
    }
}

fn run_cell(opts: &CampaignOptions, probe: &InferProbe, site: FaultSite, rate: f64) -> CampaignRun {
    let plan = FaultPlan::new(opts.seed).with_rate(site, rate);
    let guard = dota_faults::session(plan);
    let (outcome, error) = match site {
        FaultSite::TrainLoss => {
            let spec = TaskSpec::tiny(Benchmark::Text, opts.seq_len, opts.seed);
            let (train, _) = spec.generate_split(8, 2);
            let (model, mut params) = build_model(&spec, opts.seed);
            match train_dense_guarded(
                &model,
                &mut params,
                &train,
                &TrainOptions {
                    epochs: 2,
                    ..Default::default()
                },
                &WatchdogOptions::default(),
            ) {
                Ok(out) => (f64::from(out.losses.last().copied().unwrap_or(0.0)), None),
                Err(e) => (f64::NAN, Some(e.to_string())),
            }
        }
        _ => {
            let hook = probe.hook.inference(&probe.params);
            match probe.model.try_infer(&probe.params, &probe.ids, &hook) {
                Err(e) => (f64::NAN, Some(e.to_string())),
                Ok(trace) => {
                    let accel =
                        dota_accel::Accelerator::new(dota_accel::AccelConfig::gpu_comparable());
                    match accel.try_simulate_trace(probe.model.config(), &trace) {
                        Ok(report) => (report.cycles.total() as f64, None),
                        Err(e) => (f64::NAN, Some(e.to_string())),
                    }
                }
            }
        }
    };
    let counters = guard.counters();
    let injected = guard.injected_total();
    drop(guard);
    let status = match (&error, injected) {
        (Some(_), _) => RunStatus::Failed,
        (None, 0) => RunStatus::Clean,
        (None, _) => RunStatus::Absorbed,
    };
    CampaignRun {
        site,
        rate,
        status,
        injected,
        counters,
        error,
        outcome,
    }
}

impl CampaignReport {
    /// Serializes the report to canonical JSON. The output is a pure
    /// function of [`CampaignOptions`] — byte-identical across thread
    /// counts and build features — and is diffable with
    /// [`crate::report::diff_paths`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"campaign_version\": {CAMPAIGN_VERSION},\n  \"seed\": {},\n  \"seq_len\": {},\n",
            self.options.seed, self.options.seq_len
        ));
        out.push_str("  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            out.push_str("    {\n      \"site\": ");
            write_json_string(&mut out, run.site.name());
            out.push_str(&format!(
                ",\n      \"rate\": {},\n      \"status\": ",
                fmt_f64(run.rate)
            ));
            write_json_string(&mut out, run.status.name());
            out.push_str(&format!(
                ",\n      \"injected\": {},\n      \"outcome\": {},\n",
                run.injected,
                fmt_f64(run.outcome)
            ));
            if let Some(err) = &run.error {
                out.push_str("      \"error\": ");
                write_json_string(&mut out, err);
                out.push_str(",\n");
            }
            out.push_str("      \"counters\": {");
            for (j, (name, value)) in run.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        ");
                write_json_string(&mut out, name);
                out.push_str(&format!(": {value}"));
            }
            if !run.counters.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("}\n    }");
            out.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`Self::to_json`] crash-safely (temp file + atomic rename).
    ///
    /// # Errors
    ///
    /// Any I/O error from creating, writing or renaming the file.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        checkpoint::write_atomic(path, &self.to_json())
    }

    /// `(clean, absorbed, failed)` cell counts.
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for run in &self.runs {
            match run.status {
                RunStatus::Clean => t.0 += 1,
                RunStatus::Absorbed => t.1 += 1,
                RunStatus::Failed => t.2 += 1,
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignOptions {
        CampaignOptions {
            seed: 7,
            sites: FaultSite::MODEL.to_vec(),
            rates: vec![0.0, 1.0],
            seq_len: 16,
        }
    }

    #[test]
    fn zero_rate_cells_are_clean_and_full_rate_never_panics() {
        let report = run_campaign(&small());
        assert_eq!(report.runs.len(), FaultSite::MODEL.len() * 2);
        for run in &report.runs {
            if run.rate == 0.0 {
                assert_eq!(run.status, RunStatus::Clean, "site {}", run.site.name());
                assert_eq!(run.injected, 0);
            } else {
                // rate 1.0 must fire somewhere and must not be silently clean
                assert_ne!(run.status, RunStatus::Clean, "site {}", run.site.name());
            }
        }
        // ECC replay and lane re-routing absorb even a 100% rate; the
        // unrecoverable sites surface typed errors.
        let by_site = |s: FaultSite| {
            report
                .runs
                .iter()
                .find(|r| r.site == s && r.rate == 1.0)
                .unwrap()
        };
        assert_eq!(by_site(FaultSite::SramBitFlip).status, RunStatus::Absorbed);
        assert_eq!(
            by_site(FaultSite::DetectorCorrupt).status,
            RunStatus::Absorbed
        );
        assert_eq!(
            by_site(FaultSite::DetectorSaturate).status,
            RunStatus::Absorbed
        );
        assert_eq!(by_site(FaultSite::DramRead).status, RunStatus::Failed);
        assert_eq!(by_site(FaultSite::LaneStuck).status, RunStatus::Failed);
        assert_eq!(by_site(FaultSite::AttnInput).status, RunStatus::Failed);
        assert_eq!(by_site(FaultSite::TrainLoss).status, RunStatus::Failed);
        for site in [
            FaultSite::DramRead,
            FaultSite::AttnInput,
            FaultSite::TrainLoss,
        ] {
            assert!(by_site(site).error.is_some(), "site {}", site.name());
        }
    }

    #[test]
    fn report_is_deterministic_for_a_seed() {
        let a = run_campaign(&small()).to_json();
        let b = run_campaign(&small()).to_json();
        assert_eq!(a, b);
        let other = run_campaign(&CampaignOptions { seed: 8, ..small() }).to_json();
        assert_ne!(a, other, "different seeds should differ somewhere");
    }

    #[test]
    fn report_writes_valid_diffable_json() {
        let report = run_campaign(&CampaignOptions {
            sites: vec![FaultSite::SramBitFlip],
            rates: vec![0.5],
            ..small()
        });
        let dir = std::env::temp_dir().join(format!("dota_campaign_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.json");
        report.write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = serde_json::from_str::<serde_json::Value>(&text).unwrap();
        let diff = crate::report::diff_paths(&path, &path, &Default::default()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(diff.findings.is_empty(), "self-diff found divergences");
        let _ = parsed;
    }
}
