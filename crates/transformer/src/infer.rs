use crate::TransformerParams;
use dota_autograd::ParamSet;
use dota_tensor::{ops, Matrix};

/// Supplies sparse attention selections during inference.
///
/// The detector crate implements this with its quantized low-rank path; the
/// returned value is, per query row, the list of key indices to keep.
/// Returning `None` leaves the head dense.
///
/// Hooks must be [`Sync`]: with the `parallel` feature, [`Model::infer`]
/// evaluates the heads of a layer concurrently and calls `select` from
/// worker threads. Implementations must also be *order-independent* — the
/// selection for `(layer, head)` may only depend on its arguments (and
/// internal state keyed on them), never on the sequence of prior calls, so
/// that parallel and serial execution produce identical selections.
pub trait InferenceHook: Sync {
    /// Chooses the keys each query of `(layer, head)` may attend to, given
    /// the attention block's input sequence `x` (`n x d`).
    fn select(&self, layer: usize, head: usize, x: &Matrix) -> Option<Vec<Vec<u32>>>;
}

/// Dense inference: no selection.
impl InferenceHook for crate::NoHook {
    fn select(&self, _layer: usize, _head: usize, _x: &Matrix) -> Option<Vec<Vec<u32>>> {
        None
    }
}

/// Everything the accelerator simulator needs to replay one attention head:
/// its Q/K/V operands and the selected connection indices.
#[derive(Debug, Clone)]
pub struct HeadTrace {
    /// Per-query selected key indices (`None` = dense attention).
    pub selected: Option<Vec<Vec<u32>>>,
    /// Query matrix (`n x hd`).
    pub q: Matrix,
    /// Key matrix (`n x hd`).
    pub k: Matrix,
    /// Value matrix (`n x hd`).
    pub v: Matrix,
}

impl HeadTrace {
    /// Number of attended connections (kept query–key pairs).
    pub fn kept_connections(&self) -> u64 {
        match &self.selected {
            Some(sel) => sel.iter().map(|r| r.len() as u64).sum(),
            None => (self.q.rows() * self.k.rows()) as u64,
        }
    }
}

/// Trace of one encoder layer.
#[derive(Debug, Clone)]
pub struct LayerTrace {
    /// One trace per attention head.
    pub heads: Vec<HeadTrace>,
}

/// Trace of a full inference forward pass.
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    /// Per-layer traces.
    pub layers: Vec<LayerTrace>,
    /// Output logits (`1 x n_classes` pooled, or `n x n_classes` causal).
    pub logits: Matrix,
}

impl ForwardTrace {
    /// Predicted class of a pooled classification output.
    ///
    /// # Panics
    ///
    /// Panics if the logits are not a single row.
    pub fn predicted_class(&self) -> usize {
        assert_eq!(self.logits.rows(), 1, "not a pooled classification output");
        ops::argmax_rows(&self.logits)[0]
    }

    /// Overall attention retention ratio across all layers and heads
    /// (kept connections / total possible connections).
    pub fn retention(&self) -> f64 {
        let mut kept = 0u64;
        let mut total = 0u64;
        for layer in &self.layers {
            for head in &layer.heads {
                kept += head.kept_connections();
                total += (head.q.rows() * head.k.rows()) as u64;
            }
        }
        if total == 0 {
            1.0
        } else {
            kept as f64 / total as f64
        }
    }
}

impl crate::Model {
    /// Pure-`f32` inference forward pass, recording a [`ForwardTrace`].
    ///
    /// Mirrors [`forward`](crate::Model::forward) exactly (the unit tests
    /// assert agreement with the autograd path) but without a tape, so it
    /// scales to longer sequences and is what the accuracy experiments and
    /// the accelerator simulator consume.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty, longer than `seq_len`, or out of
    /// vocabulary.
    pub fn infer(
        &self,
        params: &ParamSet,
        ids: &[usize],
        hook: &dyn InferenceHook,
    ) -> ForwardTrace {
        let cfg = self.config();
        let tp: &TransformerParams = self.params();
        let n = ids.len();
        assert!(
            n > 0 && n <= cfg.seq_len,
            "sequence length {n} out of range"
        );
        let hd = cfg.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();

        let tok_table = params.value(tp.token_embedding);
        let pos_table = params.value(tp.pos_embedding);
        let mut x = Matrix::zeros(n, cfg.d_model);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < cfg.vocab_size, "token id {id} out of vocabulary");
            for c in 0..cfg.d_model {
                x[(r, c)] = tok_table[(id, c)] + pos_table[(r, c)];
            }
        }

        let mut layers = Vec::with_capacity(cfg.n_layers);
        for (l, layer) in tp.layers.iter().enumerate() {
            let q = x.matmul(params.value(layer.wq)).expect("shape");
            let k = x.matmul(params.value(layer.wk)).expect("shape");
            let v = x.matmul(params.value(layer.wv)).expect("shape");

            // Each head is independent given the shared Q/K/V projections:
            // the closure below computes one head's output and trace, and
            // with the `parallel` feature the heads of a layer fan out over
            // `dota_parallel::par_map` (order-preserving, so the trace and
            // the concatenation order match serial execution exactly).
            let compute_head = |h: usize| -> (Matrix, HeadTrace) {
                let (c0, c1) = (h * hd, (h + 1) * hd);
                let qh = q.slice_cols(c0, c1);
                let kh = k.slice_cols(c0, c1);
                let vh = v.slice_cols(c0, c1);

                let selected = hook.select(l, h, &x);
                let mask = build_mask(n, cfg.causal, selected.as_deref());
                // Record the effective selection (after causal intersection).
                let effective: Option<Vec<Vec<u32>>> = mask.map(|m| {
                    m.iter()
                        .map(|row| {
                            row.iter()
                                .enumerate()
                                .filter(|(_, &keep)| keep)
                                .map(|(j, _)| j as u32)
                                .collect()
                        })
                        .collect()
                });
                if dota_trace::enabled() {
                    let total = (n * n) as u64;
                    let kept = match &effective {
                        Some(sel) => sel.iter().map(|r| r.len() as u64).sum(),
                        None => total,
                    };
                    // Global and per-(layer, head) retained/omitted tallies;
                    // sums of u64 are order-independent, so serial and
                    // parallel head fan-out record identical totals.
                    dota_trace::count("attn.heads", 1);
                    dota_trace::count("attn.connections.total", total);
                    dota_trace::count("attn.connections.retained", kept);
                    dota_trace::count("attn.connections.omitted", total - kept);
                    dota_trace::count(&format!("attn.L{l}.H{h}.retained"), kept);
                    dota_trace::count(&format!("attn.L{l}.H{h}.omitted"), total - kept);
                }
                if dota_metrics::hist_enabled() {
                    // The sparse path never materializes the score matrix,
                    // so build it only while a histogram session is live.
                    let scores = qh.matmul_nt(&kh).expect("shape").scale(scale);
                    dota_metrics::observe_many(
                        &format!("attn.scores.L{l}.H{h}"),
                        scores.as_slice().iter().map(|&s| f64::from(s)),
                    );
                }
                // Sparse path: score only the kept connections (O(kept)
                // work, like the accelerator); dense path otherwise.
                let out = match &effective {
                    Some(sel) => ops::sparse_attention(&qh, &kh, &vh, sel, scale),
                    None => {
                        let scores = qh.matmul_nt(&kh).expect("shape").scale(scale);
                        ops::softmax_rows(&scores).matmul(&vh).expect("shape")
                    }
                };
                (
                    out,
                    HeadTrace {
                        selected: effective,
                        q: qh,
                        k: kh,
                        v: vh,
                    },
                )
            };
            let head_indices: Vec<usize> = (0..cfg.n_heads).collect();
            #[cfg(feature = "parallel")]
            let results: Vec<(Matrix, HeadTrace)> =
                dota_parallel::par_map(&head_indices, |_, &h| compute_head(h));
            #[cfg(not(feature = "parallel"))]
            let results: Vec<(Matrix, HeadTrace)> =
                head_indices.iter().map(|&h| compute_head(h)).collect();

            let mut heads = Vec::with_capacity(cfg.n_heads);
            let mut outputs = Vec::with_capacity(cfg.n_heads);
            for (out, trace) in results {
                outputs.push(out);
                heads.push(trace);
            }
            let refs: Vec<&Matrix> = outputs.iter().collect();
            let concat = Matrix::hcat(&refs).expect("head widths agree");
            let z = concat.matmul(params.value(layer.wo)).expect("shape");

            let res1 = x.add(&z).expect("shape");
            let normed1 = ops::layer_norm(
                &res1,
                params.value(layer.ln1_gamma).row(0),
                params.value(layer.ln1_beta).row(0),
                1e-5,
            );

            let h1 = normed1.matmul(params.value(layer.w_ff1)).expect("shape");
            let h1b = ops::add_bias(&h1, params.value(layer.b_ff1).row(0));
            let act = ops::gelu(&h1b);
            let h2 = act.matmul(params.value(layer.w_ff2)).expect("shape");
            let h2b = ops::add_bias(&h2, params.value(layer.b_ff2).row(0));

            let res2 = normed1.add(&h2b).expect("shape");
            x = ops::layer_norm(
                &res2,
                params.value(layer.ln2_gamma).row(0),
                params.value(layer.ln2_beta).row(0),
                1e-5,
            );
            layers.push(LayerTrace { heads });
        }

        let wh = params.value(tp.w_head);
        let bh = params.value(tp.b_head);
        let logits = if cfg.causal {
            ops::add_bias(&x.matmul(wh).expect("shape"), bh.row(0))
        } else {
            let pooled = match cfg.pooling {
                crate::Pooling::Mean => {
                    let mut p = Matrix::zeros(1, cfg.d_model);
                    for r in 0..n {
                        for c in 0..cfg.d_model {
                            p[(0, c)] += x[(r, c)] / n as f32;
                        }
                    }
                    p
                }
                crate::Pooling::First => x.slice_rows(0, 1),
            };
            ops::add_bias(&pooled.matmul(wh).expect("shape"), bh.row(0))
        };
        ForwardTrace { layers, logits }
    }
}

/// Builds the boolean mask from an optional selection, intersecting with the
/// causal constraint. Matches `model::combine_masks` semantics (a causal row
/// never empties: the diagonal survives).
fn build_mask(n: usize, causal: bool, selected: Option<&[Vec<u32>]>) -> Option<Vec<Vec<bool>>> {
    match (causal, selected) {
        (false, None) => None,
        (false, Some(sel)) => Some(
            sel.iter()
                .map(|row| {
                    let mut mask = vec![false; n];
                    for &j in row {
                        mask[j as usize] = true;
                    }
                    mask
                })
                .collect(),
        ),
        (true, None) => Some((0..n).map(|i| (0..n).map(|j| j <= i).collect()).collect()),
        (true, Some(sel)) => Some(
            sel.iter()
                .enumerate()
                .map(|(i, row)| {
                    let mut mask = vec![false; n];
                    for &j in row {
                        if (j as usize) <= i {
                            mask[j as usize] = true;
                        }
                    }
                    if !mask.iter().any(|&b| b) {
                        mask[i] = true;
                    }
                    mask
                })
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, NoHook, TransformerConfig};
    use dota_autograd::Graph;

    fn tiny() -> (Model, ParamSet) {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny(16, 8, 3), &mut params, 5);
        (model, params)
    }

    #[test]
    fn infer_matches_train_forward() {
        let (model, params) = tiny();
        let ids = vec![1, 4, 2, 7, 3];
        let trace = model.infer(&params, &ids, &NoHook);
        let mut g = Graph::new();
        let out = model.forward(&mut g, &params, &ids, &mut NoHook);
        assert!(
            trace.logits.approx_eq(g.value(out.logits), 1e-4),
            "inference and training paths disagree: {:?} vs {:?}",
            trace.logits,
            g.value(out.logits)
        );
    }

    #[test]
    fn causal_infer_matches_train_forward() {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny_causal(16, 8), &mut params, 6);
        let ids = vec![1, 4, 2, 7];
        let trace = model.infer(&params, &ids, &NoHook);
        let mut g = Graph::new();
        let out = model.forward(&mut g, &params, &ids, &mut NoHook);
        assert!(trace.logits.approx_eq(g.value(out.logits), 1e-4));
    }

    #[test]
    fn trace_shapes_and_retention() {
        let (model, params) = tiny();
        let ids = vec![1, 2, 3, 4, 5, 6];
        let trace = model.infer(&params, &ids, &NoHook);
        assert_eq!(trace.layers.len(), 2);
        assert_eq!(trace.layers[0].heads.len(), 2);
        let head = &trace.layers[0].heads[0];
        assert_eq!(head.q.shape(), (6, 16));
        assert!(head.selected.is_none());
        assert_eq!(trace.retention(), 1.0);
        let _ = trace.predicted_class();
    }

    #[test]
    fn sparse_hook_reduces_retention() {
        struct KeepTwo;
        impl InferenceHook for KeepTwo {
            fn select(&self, _l: usize, _h: usize, x: &Matrix) -> Option<Vec<Vec<u32>>> {
                Some((0..x.rows()).map(|_| vec![0, 1]).collect())
            }
        }
        let (model, params) = tiny();
        let ids = vec![0, 1, 2, 3, 4, 5, 6, 7];
        let trace = model.infer(&params, &ids, &KeepTwo);
        assert!((trace.retention() - 0.25).abs() < 1e-9);
        for layer in &trace.layers {
            for head in &layer.heads {
                assert_eq!(head.kept_connections(), 16);
            }
        }
    }

    #[test]
    fn causal_trace_selection_respects_triangle() {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny_causal(16, 8), &mut params, 6);
        let trace = model.infer(&params, &[1, 2, 3, 4, 5], &NoHook);
        let sel = trace.layers[0].heads[0].selected.as_ref().unwrap();
        for (i, row) in sel.iter().enumerate() {
            assert!(row.iter().all(|&j| (j as usize) <= i));
            assert_eq!(row.len(), i + 1);
        }
    }

    #[test]
    fn build_mask_causal_selection_keeps_diagonal() {
        let sel = vec![vec![3u32], vec![2, 3]]; // all future for rows 0 and 1
        let m = build_mask(4, true, Some(&sel)).unwrap();
        assert!(m[0][0], "row 0 fell back to diagonal");
        assert!(!m[0][3]);
        assert!(m[1][1], "row 1 fell back to diagonal");
    }
}
