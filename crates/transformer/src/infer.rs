use crate::TransformerParams;
use dota_autograd::ParamSet;
use dota_faults::FaultSite;
use dota_tensor::{ops, Matrix};
use std::fmt;

/// Typed errors from the guarded inference path ([`Model::try_infer`]).
///
/// [`Model::try_infer`]: crate::Model::try_infer
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// The attention block's input went non-finite (NaN/Inf) at a layer.
    /// Dense fallback cannot absorb this — garbage operands poison every
    /// head — so inference stops with a typed error instead of propagating.
    NonFiniteInput {
        /// Layer whose input failed the finiteness guard.
        layer: usize,
    },
    /// The output logits contain NaN/Inf.
    NonFiniteLogits,
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::NonFiniteInput { layer } => {
                write!(f, "non-finite attention input at layer {layer}")
            }
            InferError::NonFiniteLogits => write!(f, "non-finite output logits"),
        }
    }
}

impl std::error::Error for InferError {}

/// Supplies sparse attention selections during inference.
///
/// The detector crate implements this with its quantized low-rank path; the
/// returned value is, per query row, the list of key indices to keep.
/// Returning `None` leaves the head dense.
///
/// Hooks must be [`Sync`]: with the `parallel` feature, [`Model::infer`]
/// evaluates the heads of a layer concurrently and calls `select` from
/// worker threads. Implementations must also be *order-independent* — the
/// selection for `(layer, head)` may only depend on its arguments (and
/// internal state keyed on them), never on the sequence of prior calls, so
/// that parallel and serial execution produce identical selections.
pub trait InferenceHook: Sync {
    /// Chooses the keys each query of `(layer, head)` may attend to, given
    /// the attention block's input sequence `x` (`n x d`).
    fn select(&self, layer: usize, head: usize, x: &Matrix) -> Option<Vec<Vec<u32>>>;
}

/// Dense inference: no selection.
impl InferenceHook for crate::NoHook {
    fn select(&self, _layer: usize, _head: usize, _x: &Matrix) -> Option<Vec<Vec<u32>>> {
        None
    }
}

/// Everything the accelerator simulator needs to replay one attention head:
/// its Q/K/V operands and the selected connection indices.
#[derive(Debug, Clone)]
pub struct HeadTrace {
    /// Per-query selected key indices (`None` = dense attention).
    pub selected: Option<Vec<Vec<u32>>>,
    /// Query matrix (`n x hd`).
    pub q: Matrix,
    /// Key matrix (`n x hd`).
    pub k: Matrix,
    /// Value matrix (`n x hd`).
    pub v: Matrix,
}

impl HeadTrace {
    /// Number of attended connections (kept query–key pairs).
    pub fn kept_connections(&self) -> u64 {
        match &self.selected {
            Some(sel) => sel.iter().map(|r| r.len() as u64).sum(),
            None => (self.q.rows() * self.k.rows()) as u64,
        }
    }
}

/// Trace of one encoder layer.
#[derive(Debug, Clone)]
pub struct LayerTrace {
    /// One trace per attention head.
    pub heads: Vec<HeadTrace>,
}

/// Trace of a full inference forward pass.
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    /// Per-layer traces.
    pub layers: Vec<LayerTrace>,
    /// Output logits (`1 x n_classes` pooled, or `n x n_classes` causal).
    pub logits: Matrix,
    /// Heads whose detector selection was degenerate (empty, out of range,
    /// wrong row count) and therefore computed **dense** attention instead
    /// of propagating garbage. Also recorded in the `faults.fallback_dense`
    /// counter when a fault/trace session is live.
    pub fallback_dense: u64,
}

impl ForwardTrace {
    /// Predicted class of a pooled classification output.
    ///
    /// # Panics
    ///
    /// Panics if the logits are not a single row.
    pub fn predicted_class(&self) -> usize {
        assert_eq!(self.logits.rows(), 1, "not a pooled classification output");
        ops::argmax_rows(&self.logits)[0]
    }

    /// Overall attention retention ratio across all layers and heads
    /// (kept connections / total possible connections).
    pub fn retention(&self) -> f64 {
        let mut kept = 0u64;
        let mut total = 0u64;
        for layer in &self.layers {
            for head in &layer.heads {
                kept += head.kept_connections();
                total += (head.q.rows() * head.k.rows()) as u64;
            }
        }
        if total == 0 {
            1.0
        } else {
            kept as f64 / total as f64
        }
    }
}

impl crate::Model {
    /// Pure-`f32` inference forward pass, recording a [`ForwardTrace`].
    ///
    /// Mirrors [`forward`](crate::Model::forward) exactly (the unit tests
    /// assert agreement with the autograd path) but without a tape, so it
    /// scales to longer sequences and is what the accuracy experiments and
    /// the accelerator simulator consume.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty, longer than `seq_len`, or out of
    /// vocabulary.
    pub fn infer(
        &self,
        params: &ParamSet,
        ids: &[usize],
        hook: &dyn InferenceHook,
    ) -> ForwardTrace {
        match self.infer_impl(params, ids, hook, false) {
            Ok(trace) => trace,
            // With the strict guards off the impl has no error source.
            Err(_) => unreachable!("unguarded inference cannot fail"),
        }
    }

    /// Guarded variant of [`infer`](crate::Model::infer): checks the
    /// attention block's input for NaN/Inf at every layer (and the output
    /// logits at the end) and surfaces a typed [`InferError`] instead of
    /// silently propagating garbage. Inside a [`dota_faults`] session the
    /// `attn.input` site can poison an input tile to exercise this path.
    ///
    /// Degenerate detector selections fall back to dense attention per
    /// head on **both** paths; the guards here cover what fallback cannot
    /// absorb.
    ///
    /// # Errors
    ///
    /// Returns [`InferError`] when a non-finite value is detected.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty, longer than `seq_len`, or out of
    /// vocabulary (precondition violations, as with `infer`).
    pub fn try_infer(
        &self,
        params: &ParamSet,
        ids: &[usize],
        hook: &dyn InferenceHook,
    ) -> Result<ForwardTrace, InferError> {
        self.infer_impl(params, ids, hook, true)
    }

    fn infer_impl(
        &self,
        params: &ParamSet,
        ids: &[usize],
        hook: &dyn InferenceHook,
        strict: bool,
    ) -> Result<ForwardTrace, InferError> {
        let _prof = dota_prof::span("model.infer");
        let cfg = self.config();
        let tp: &TransformerParams = self.params();
        let n = ids.len();
        assert!(
            n > 0 && n <= cfg.seq_len,
            "sequence length {n} out of range"
        );
        let hd = cfg.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();

        let tok_table = params.value(tp.token_embedding);
        let pos_table = params.value(tp.pos_embedding);
        let mut x = Matrix::zeros(n, cfg.d_model);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < cfg.vocab_size, "token id {id} out of vocabulary");
            for c in 0..cfg.d_model {
                x[(r, c)] = tok_table[(id, c)] + pos_table[(r, c)];
            }
        }

        let mut layers = Vec::with_capacity(cfg.n_layers);
        let mut fallback_dense = 0u64;
        // Q/K/V projections have the same shape at every layer: reuse one
        // output buffer per projection across the loop (`matmul_into`)
        // so the steady-state layer body allocates nothing for them.
        let mut q = Matrix::zeros(n, cfg.d_model);
        let mut k = Matrix::zeros(n, cfg.d_model);
        let mut v = Matrix::zeros(n, cfg.d_model);
        for (l, layer) in tp.layers.iter().enumerate() {
            if strict {
                if dota_faults::enabled()
                    && dota_faults::should_inject(FaultSite::AttnInput, &[l as u64])
                {
                    // Poison one element of the attention input tile.
                    x[(0, 0)] = f32::NAN;
                }
                if x.as_slice().iter().any(|v| !v.is_finite()) {
                    return Err(InferError::NonFiniteInput { layer: l });
                }
            }
            x.matmul_into(params.value(layer.wq), &mut q)
                .expect("shape");
            x.matmul_into(params.value(layer.wk), &mut k)
                .expect("shape");
            x.matmul_into(params.value(layer.wv), &mut v)
                .expect("shape");

            // Each head is independent given the shared Q/K/V projections:
            // the closure below computes one head's output and trace, and
            // with the `parallel` feature the heads of a layer fan out over
            // `dota_parallel::par_map` (order-preserving, so the trace and
            // the concatenation order match serial execution exactly).
            // GEMMs inside a head run serially on that worker — nested
            // dispatch is suppressed (`dota_parallel::in_worker`) so the
            // head fan-out and the GEMM pool never oversubscribe cores.
            let compute_head = |h: usize| -> (Matrix, HeadTrace, bool) {
                let _prof = dota_prof::span("attn.head");
                let (c0, c1) = (h * hd, (h + 1) * hd);
                let qh = q.slice_cols(c0, c1);
                let kh = k.slice_cols(c0, c1);
                let vh = v.slice_cols(c0, c1);

                // A degenerate selection (corrupted indices, saturated
                // detector, wrong shape) would poison the head or panic in
                // mask construction; this head falls back to full dense
                // attention instead, and the fallback is counted.
                let mut fell_back = false;
                let selected = match hook.select(l, h, &x) {
                    Some(sel) if selection_degenerate(&sel, n, cfg.causal) => {
                        fell_back = true;
                        dota_faults::record("faults.fallback_dense", 1);
                        dota_trace::count("faults.fallback_dense", 1);
                        None
                    }
                    other => other,
                };
                let mask = build_mask(n, cfg.causal, selected.as_deref());
                // Record the effective selection (after causal intersection).
                let effective: Option<Vec<Vec<u32>>> = mask.map(|m| {
                    m.iter()
                        .map(|row| {
                            row.iter()
                                .enumerate()
                                .filter(|(_, &keep)| keep)
                                .map(|(j, _)| j as u32)
                                .collect()
                        })
                        .collect()
                });
                if dota_trace::enabled() {
                    let total = (n * n) as u64;
                    let kept = match &effective {
                        Some(sel) => sel.iter().map(|r| r.len() as u64).sum(),
                        None => total,
                    };
                    // Global and per-(layer, head) retained/omitted tallies;
                    // sums of u64 are order-independent, so serial and
                    // parallel head fan-out record identical totals.
                    dota_trace::count("attn.heads", 1);
                    dota_trace::count("attn.connections.total", total);
                    dota_trace::count("attn.connections.retained", kept);
                    dota_trace::count("attn.connections.omitted", total - kept);
                    dota_trace::count(&format!("attn.L{l}.H{h}.retained"), kept);
                    dota_trace::count(&format!("attn.L{l}.H{h}.omitted"), total - kept);
                }
                if dota_metrics::hist_enabled() {
                    // The sparse path never materializes the score matrix,
                    // so build it only while a histogram session is live.
                    let scores = qh.matmul_nt(&kh).expect("shape").scale(scale);
                    dota_metrics::observe_many(
                        &format!("attn.scores.L{l}.H{h}"),
                        scores.as_slice().iter().map(|&s| f64::from(s)),
                    );
                }
                // Sparse path: score only the kept connections (O(kept)
                // work, like the accelerator); dense path otherwise.
                let out = match &effective {
                    Some(sel) => ops::sparse_attention(&qh, &kh, &vh, sel, scale),
                    None => {
                        let scores = qh.matmul_nt(&kh).expect("shape").scale(scale);
                        ops::softmax_rows(&scores).matmul(&vh).expect("shape")
                    }
                };
                (
                    out,
                    HeadTrace {
                        selected: effective,
                        q: qh,
                        k: kh,
                        v: vh,
                    },
                    fell_back,
                )
            };
            let head_indices: Vec<usize> = (0..cfg.n_heads).collect();
            #[cfg(feature = "parallel")]
            let results: Vec<(Matrix, HeadTrace, bool)> =
                dota_parallel::par_map(&head_indices, |_, &h| compute_head(h));
            #[cfg(not(feature = "parallel"))]
            let results: Vec<(Matrix, HeadTrace, bool)> =
                head_indices.iter().map(|&h| compute_head(h)).collect();

            let mut heads = Vec::with_capacity(cfg.n_heads);
            let mut outputs = Vec::with_capacity(cfg.n_heads);
            for (out, trace, fell_back) in results {
                outputs.push(out);
                heads.push(trace);
                fallback_dense += u64::from(fell_back);
            }
            let refs: Vec<&Matrix> = outputs.iter().collect();
            let concat = Matrix::hcat(&refs).expect("head widths agree");
            let z = concat.matmul(params.value(layer.wo)).expect("shape");

            let res1 = x.add(&z).expect("shape");
            let normed1 = ops::layer_norm(
                &res1,
                params.value(layer.ln1_gamma).row(0),
                params.value(layer.ln1_beta).row(0),
                1e-5,
            );

            let h1 = normed1.matmul(params.value(layer.w_ff1)).expect("shape");
            let h1b = ops::add_bias(&h1, params.value(layer.b_ff1).row(0));
            let act = ops::gelu(&h1b);
            let h2 = act.matmul(params.value(layer.w_ff2)).expect("shape");
            let h2b = ops::add_bias(&h2, params.value(layer.b_ff2).row(0));

            let res2 = normed1.add(&h2b).expect("shape");
            x = ops::layer_norm(
                &res2,
                params.value(layer.ln2_gamma).row(0),
                params.value(layer.ln2_beta).row(0),
                1e-5,
            );
            layers.push(LayerTrace { heads });
        }

        let wh = params.value(tp.w_head);
        let bh = params.value(tp.b_head);
        let logits = if cfg.causal {
            ops::add_bias(&x.matmul(wh).expect("shape"), bh.row(0))
        } else {
            let pooled = match cfg.pooling {
                crate::Pooling::Mean => {
                    let mut p = Matrix::zeros(1, cfg.d_model);
                    for r in 0..n {
                        for c in 0..cfg.d_model {
                            p[(0, c)] += x[(r, c)] / n as f32;
                        }
                    }
                    p
                }
                crate::Pooling::First => x.slice_rows(0, 1),
            };
            ops::add_bias(&pooled.matmul(wh).expect("shape"), bh.row(0))
        };
        if strict && logits.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(InferError::NonFiniteLogits);
        }
        Ok(ForwardTrace {
            layers,
            logits,
            fallback_dense,
        })
    }
}

/// Whether a hook selection is unusable for sparse attention: wrong row
/// count, an out-of-range key index, every row empty, or (non-causal) any
/// empty row — an empty non-causal row would softmax over nothing. The
/// causal mask repairs individual empty rows via the surviving diagonal, so
/// only an entirely empty selection is degenerate there.
fn selection_degenerate(sel: &[Vec<u32>], n: usize, causal: bool) -> bool {
    if sel.len() != n {
        return true;
    }
    if sel.iter().any(|row| row.iter().any(|&j| j as usize >= n)) {
        return true;
    }
    let empty_rows = sel.iter().filter(|r| r.is_empty()).count();
    if causal {
        empty_rows == n
    } else {
        empty_rows > 0
    }
}

/// Builds the boolean mask from an optional selection, intersecting with the
/// causal constraint. Matches `model::combine_masks` semantics (a causal row
/// never empties: the diagonal survives).
fn build_mask(n: usize, causal: bool, selected: Option<&[Vec<u32>]>) -> Option<Vec<Vec<bool>>> {
    match (causal, selected) {
        (false, None) => None,
        (false, Some(sel)) => Some(
            sel.iter()
                .map(|row| {
                    let mut mask = vec![false; n];
                    for &j in row {
                        mask[j as usize] = true;
                    }
                    mask
                })
                .collect(),
        ),
        (true, None) => Some((0..n).map(|i| (0..n).map(|j| j <= i).collect()).collect()),
        (true, Some(sel)) => Some(
            sel.iter()
                .enumerate()
                .map(|(i, row)| {
                    let mut mask = vec![false; n];
                    for &j in row {
                        if (j as usize) <= i {
                            mask[j as usize] = true;
                        }
                    }
                    if !mask.iter().any(|&b| b) {
                        mask[i] = true;
                    }
                    mask
                })
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, NoHook, TransformerConfig};
    use dota_autograd::Graph;

    fn tiny() -> (Model, ParamSet) {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny(16, 8, 3), &mut params, 5);
        (model, params)
    }

    #[test]
    fn infer_matches_train_forward() {
        let (model, params) = tiny();
        let ids = vec![1, 4, 2, 7, 3];
        let trace = model.infer(&params, &ids, &NoHook);
        let mut g = Graph::new();
        let out = model.forward(&mut g, &params, &ids, &mut NoHook);
        assert!(
            trace.logits.approx_eq(g.value(out.logits), 1e-4),
            "inference and training paths disagree: {:?} vs {:?}",
            trace.logits,
            g.value(out.logits)
        );
    }

    #[test]
    fn causal_infer_matches_train_forward() {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny_causal(16, 8), &mut params, 6);
        let ids = vec![1, 4, 2, 7];
        let trace = model.infer(&params, &ids, &NoHook);
        let mut g = Graph::new();
        let out = model.forward(&mut g, &params, &ids, &mut NoHook);
        assert!(trace.logits.approx_eq(g.value(out.logits), 1e-4));
    }

    #[test]
    fn trace_shapes_and_retention() {
        let (model, params) = tiny();
        let ids = vec![1, 2, 3, 4, 5, 6];
        let trace = model.infer(&params, &ids, &NoHook);
        assert_eq!(trace.layers.len(), 2);
        assert_eq!(trace.layers[0].heads.len(), 2);
        let head = &trace.layers[0].heads[0];
        assert_eq!(head.q.shape(), (6, 16));
        assert!(head.selected.is_none());
        assert_eq!(trace.retention(), 1.0);
        let _ = trace.predicted_class();
    }

    #[test]
    fn sparse_hook_reduces_retention() {
        struct KeepTwo;
        impl InferenceHook for KeepTwo {
            fn select(&self, _l: usize, _h: usize, x: &Matrix) -> Option<Vec<Vec<u32>>> {
                Some((0..x.rows()).map(|_| vec![0, 1]).collect())
            }
        }
        let (model, params) = tiny();
        let ids = vec![0, 1, 2, 3, 4, 5, 6, 7];
        let trace = model.infer(&params, &ids, &KeepTwo);
        assert!((trace.retention() - 0.25).abs() < 1e-9);
        for layer in &trace.layers {
            for head in &layer.heads {
                assert_eq!(head.kept_connections(), 16);
            }
        }
    }

    #[test]
    fn causal_trace_selection_respects_triangle() {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny_causal(16, 8), &mut params, 6);
        let trace = model.infer(&params, &[1, 2, 3, 4, 5], &NoHook);
        let sel = trace.layers[0].heads[0].selected.as_ref().unwrap();
        for (i, row) in sel.iter().enumerate() {
            assert!(row.iter().all(|&j| (j as usize) <= i));
            assert_eq!(row.len(), i + 1);
        }
    }

    #[test]
    fn degenerate_selection_falls_back_to_dense() {
        // Out-of-range key indices (as a corrupted detector would emit)
        // must not panic or poison the head: the head computes dense
        // attention and the fallback is visible on the trace.
        struct OutOfRange;
        impl InferenceHook for OutOfRange {
            fn select(&self, _l: usize, _h: usize, x: &Matrix) -> Option<Vec<Vec<u32>>> {
                let n = x.rows();
                Some((0..n).map(|i| vec![(i + n) as u32]).collect())
            }
        }
        struct AllEmpty;
        impl InferenceHook for AllEmpty {
            fn select(&self, _l: usize, _h: usize, x: &Matrix) -> Option<Vec<Vec<u32>>> {
                Some(vec![Vec::new(); x.rows()])
            }
        }
        let (model, params) = tiny();
        let ids = vec![1, 2, 3, 4, 5];
        let dense = model.infer(&params, &ids, &NoHook);
        assert_eq!(dense.fallback_dense, 0);
        for hook in [&OutOfRange as &dyn InferenceHook, &AllEmpty] {
            let trace = model.infer(&params, &ids, hook);
            assert_eq!(trace.fallback_dense, 4, "2 layers x 2 heads all fell back");
            assert_eq!(trace.retention(), 1.0);
            assert_eq!(trace.logits, dense.logits, "fallback must equal dense");
        }
    }

    #[test]
    fn wrong_row_count_selection_falls_back() {
        struct ShortSelection;
        impl InferenceHook for ShortSelection {
            fn select(&self, _l: usize, _h: usize, _x: &Matrix) -> Option<Vec<Vec<u32>>> {
                Some(vec![vec![0u32]]) // one row regardless of n
            }
        }
        let (model, params) = tiny();
        let trace = model.infer(&params, &[1, 2, 3, 4], &ShortSelection);
        assert_eq!(trace.fallback_dense, 4);
        assert_eq!(trace.retention(), 1.0);
    }

    #[test]
    fn try_infer_matches_infer_when_clean() {
        let (model, params) = tiny();
        let ids = vec![1, 4, 2, 7, 3];
        let a = model.infer(&params, &ids, &NoHook);
        let b = model.try_infer(&params, &ids, &NoHook).unwrap();
        assert_eq!(a.logits, b.logits);
        assert_eq!(a.fallback_dense, b.fallback_dense);
    }

    #[test]
    fn try_infer_reports_non_finite_input() {
        let (model, mut params) = tiny();
        // Corrupt a weight so layer 0's input is fine but its output (the
        // next layer's input) goes non-finite.
        let wq0 = {
            let tp = model.params();
            tp.layers[0].w_ff2
        };
        params.value_mut(wq0)[(0, 0)] = f32::NAN;
        let err = model.try_infer(&params, &[1, 2, 3], &NoHook).unwrap_err();
        assert!(
            matches!(
                err,
                InferError::NonFiniteInput { .. } | InferError::NonFiniteLogits
            ),
            "{err}"
        );
    }

    #[test]
    fn attn_input_fault_surfaces_typed_error() {
        use dota_faults::{FaultPlan, FaultSite};
        let (model, params) = tiny();
        let ids = vec![1, 2, 3, 4];
        let guard = dota_faults::session(FaultPlan::new(2).with_rate(FaultSite::AttnInput, 1.0));
        let err = model.try_infer(&params, &ids, &NoHook).unwrap_err();
        assert_eq!(err, InferError::NonFiniteInput { layer: 0 });
        assert_eq!(guard.counter("faults.attn.input.injected"), 1);
        drop(guard);
        // Unguarded inference is untouched by the site even mid-session.
        let guard = dota_faults::session(FaultPlan::new(2).with_rate(FaultSite::AttnInput, 1.0));
        let trace = model.infer(&params, &ids, &NoHook);
        assert!(trace.logits.as_slice().iter().all(|v| v.is_finite()));
        drop(guard);
    }

    #[test]
    fn build_mask_causal_selection_keeps_diagonal() {
        let sel = vec![vec![3u32], vec![2, 3]]; // all future for rows 0 and 1
        let m = build_mask(4, true, Some(&sel)).unwrap();
        assert!(m[0][0], "row 0 fell back to diagonal");
        assert!(!m[0][3]);
        assert!(m[1][1], "row 1 fell back to diagonal");
    }
}
