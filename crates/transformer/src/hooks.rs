use dota_autograd::{Graph, Var};

/// What an [`AttentionHook`] decided for one attention head.
#[derive(Debug, Default)]
pub struct HookOutcome {
    /// Sparse attention mask to apply (row `i` selects the keys query `i`
    /// may attend to). `None` leaves the head dense.
    pub mask: Option<Vec<Vec<bool>>>,
    /// An auxiliary scalar loss node contributed by the hook — DOTA's
    /// detector returns its `L_MSE` estimation loss here (Eq. 5), which the
    /// trainer folds into `L = L_model + λ·L_MSE` (Eq. 6).
    pub aux_loss: Option<Var>,
}

/// Observer of per-head attention scores during the trainable forward pass.
///
/// This is the joint-optimization seam between the Transformer and the
/// detector (paper §3.2): the hook sees the layer input `x` (post layer
/// norm, what the detector's low-rank path consumes) and the exact scores
/// `scores = Q K^T / sqrt(hd)` *as graph nodes*, so any auxiliary loss it
/// builds back-propagates into both the detector parameters and the model
/// parameters.
pub trait AttentionHook {
    /// Called once per `(layer, head)` before softmax.
    ///
    /// `x` is the attention block's input sequence (`n x d`); `scores` is
    /// the scaled `n x n` score node for this head.
    fn on_scores(
        &mut self,
        g: &mut Graph,
        layer: usize,
        head: usize,
        x: Var,
        scores: Var,
    ) -> HookOutcome;
}

/// A hook that does nothing: dense attention, no auxiliary loss.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHook;

impl AttentionHook for NoHook {
    fn on_scores(
        &mut self,
        _g: &mut Graph,
        _layer: usize,
        _head: usize,
        _x: Var,
        _scores: Var,
    ) -> HookOutcome {
        HookOutcome::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_hook_is_inert() {
        let mut g = Graph::new();
        let x = g.constant(dota_tensor::Matrix::zeros(2, 2));
        let s = g.constant(dota_tensor::Matrix::zeros(2, 2));
        let out = NoHook.on_scores(&mut g, 0, 0, x, s);
        assert!(out.mask.is_none());
        assert!(out.aux_loss.is_none());
    }
}
