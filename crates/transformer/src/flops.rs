//! Analytic FLOPs breakdown of a Transformer encoder (paper Fig. 3).
//!
//! The paper's motivating observation is that the *parameter-free* attention
//! GEMMs (`Q K^T` and `A V`, quadratic in sequence length) dominate as
//! sequences grow, while the parameterized GEMMs (QKV projections, output
//! projection, FFN) only grow linearly. These functions count both, plus the
//! detector's estimation overhead, so that Figures 3 and 12 can be produced
//! analytically for paper-scale models.

use crate::TransformerConfig;
use dota_tensor::flops as tf;

/// FLOPs of one encoder layer, split by stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerFlops {
    /// Parameterized linear transformations: QKV + output projection.
    pub linear: u64,
    /// Parameter-free attention: `Q K^T`, softmax, `A V`.
    pub attention: u64,
    /// Feed-forward network (two FC layers + GELU).
    pub ffn: u64,
    /// Detector overhead: projection, low-rank transforms, estimated scores.
    pub detection: u64,
}

impl LayerFlops {
    /// Total FLOPs of the layer.
    pub fn total(&self) -> u64 {
        self.linear + self.attention + self.ffn + self.detection
    }

    /// Attention share of the layer's work, in `[0, 1]`.
    pub fn attention_fraction(&self) -> f64 {
        self.attention as f64 / self.total().max(1) as f64
    }
}

/// FLOPs of one encoder layer at sequence length `n` with dense attention.
pub fn dense_layer_flops(cfg: &TransformerConfig, n: usize) -> LayerFlops {
    sparse_layer_flops(cfg, n, 1.0, 0.0)
}

/// FLOPs of one encoder layer at sequence length `n`, keeping `retention`
/// of attention connections, with a detector of dimension-reduction factor
/// `sigma` (0 disables detection accounting).
///
/// # Panics
///
/// Panics if `retention` is outside `[0, 1]` or `sigma` outside `[0, 1]`.
pub fn sparse_layer_flops(
    cfg: &TransformerConfig,
    n: usize,
    retention: f64,
    sigma: f64,
) -> LayerFlops {
    assert!((0.0..=1.0).contains(&retention), "retention out of range");
    assert!((0.0..=1.0).contains(&sigma), "sigma out of range");
    let d = cfg.d_model;
    let hd = cfg.head_dim();
    let heads = cfg.n_heads as u64;

    // Linear transformation stage: X(Wq|Wk|Wv) and output projection.
    let linear = 3 * tf::gemm_flops(n, d, d) + tf::gemm_flops(n, d, d);

    // Attention stage per head over the kept connections.
    let kept = (retention * (n as f64) * (n as f64)).round() as u64;
    let attention = heads * (tf::sparse_attention_flops(kept, hd) + 5 * kept) // scores+agg+softmax
        ;

    // FFN stage.
    let ffn = tf::gemm_flops(n, d, cfg.d_ff)
        + tf::gemm_flops(n, cfg.d_ff, d)
        + tf::gelu_flops(n, cfg.d_ff);

    // Detection: project X (n x d -> n x k), two low-rank transforms
    // (k x k), and the estimated score GEMM (n x k x n), per head.
    let detection = if sigma > 0.0 {
        let k = ((hd as f64) * sigma).floor().max(1.0) as usize;
        let project = tf::gemm_flops(n, d, k);
        let transforms = 2 * tf::gemm_flops(n, k, k);
        let est_scores = tf::gemm_flops(n, k, n);
        heads * (project + transforms + est_scores)
    } else {
        0
    };

    LayerFlops {
        linear,
        attention,
        ffn,
        detection,
    }
}

/// Whole-model FLOPs at sequence length `n` (all layers; embeddings and the
/// classifier head are negligible and excluded, as in the paper's figure).
pub fn model_flops(cfg: &TransformerConfig, n: usize, retention: f64, sigma: f64) -> LayerFlops {
    let per = sparse_layer_flops(cfg, n, retention, sigma);
    let l = cfg.n_layers as u64;
    LayerFlops {
        linear: per.linear * l,
        attention: per.attention * l,
        ffn: per.ffn * l,
        detection: per.detection * l,
    }
}

/// One row of the Figure 3 sweep: sequence length and the attention /
/// other split of normalized FLOPs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Row {
    /// Sequence length.
    pub seq_len: usize,
    /// Fraction of FLOPs spent in attention.
    pub attention_fraction: f64,
    /// Fraction of FLOPs spent elsewhere (linear + FFN).
    pub other_fraction: f64,
}

/// Reproduces the Figure 3 sweep for a model shape across sequence lengths.
pub fn fig3_sweep(cfg: &TransformerConfig, seq_lens: &[usize]) -> Vec<Fig3Row> {
    seq_lens
        .iter()
        .map(|&n| {
            let f = dense_layer_flops(cfg, n);
            let attn = f.attention_fraction();
            Fig3Row {
                seq_len: n,
                attention_fraction: attn,
                other_fraction: 1.0 - attn,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_dominates_at_long_sequences() {
        // Figure 3: attention is a minority at 384 and the clear bottleneck
        // by 16K for BERT-large.
        let cfg = TransformerConfig::bert_large(16_384);
        let short = dense_layer_flops(&cfg, 384).attention_fraction();
        let long = dense_layer_flops(&cfg, 16_384).attention_fraction();
        assert!(short < 0.25, "at 384: {short}");
        assert!(long > 0.70, "at 16K: {long}");
    }

    #[test]
    fn fig3_fractions_sum_to_one_and_grow() {
        let cfg = TransformerConfig::bert_large(16_384);
        let rows = fig3_sweep(&cfg, &[384, 512, 1024, 2048, 4096, 8192, 16_384]);
        let mut prev = 0.0;
        for row in &rows {
            assert!((row.attention_fraction + row.other_fraction - 1.0).abs() < 1e-12);
            assert!(row.attention_fraction > prev, "monotone growth");
            prev = row.attention_fraction;
        }
    }

    #[test]
    fn sparse_attention_scales_with_retention() {
        let cfg = TransformerConfig::lra(2048, 2);
        let dense = dense_layer_flops(&cfg, 2048);
        let sparse = sparse_layer_flops(&cfg, 2048, 0.1, 0.0);
        let ratio = dense.attention as f64 / sparse.attention as f64;
        assert!((ratio - 10.0).abs() < 0.5, "ratio {ratio}");
        assert_eq!(dense.linear, sparse.linear);
        assert_eq!(dense.ffn, sparse.ffn);
    }

    #[test]
    fn detection_overhead_is_small() {
        // The paper reports detection at a fraction of a percent of
        // end-to-end work (Fig. 12c discussion).
        let cfg = TransformerConfig::lra(2048, 2);
        let f = sparse_layer_flops(&cfg, 2048, 0.1, 0.2);
        let frac = f.detection as f64 / f.total() as f64;
        assert!(frac < 0.15, "detection fraction {frac}");
        assert!(f.detection > 0);
    }

    #[test]
    fn model_flops_multiplies_layers() {
        let cfg = TransformerConfig::tiny(64, 16, 2);
        let per = dense_layer_flops(&cfg, 64);
        let all = model_flops(&cfg, 64, 1.0, 0.0);
        assert_eq!(all.total(), per.total() * cfg.n_layers as u64);
    }

    #[test]
    #[should_panic(expected = "retention out of range")]
    fn rejects_bad_retention() {
        let cfg = TransformerConfig::tiny(64, 16, 2);
        let _ = sparse_layer_flops(&cfg, 64, 1.5, 0.0);
    }
}
