/// How a non-causal model pools the sequence for classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pooling {
    /// Mean over all positions (LRA-style).
    #[default]
    Mean,
    /// First position only (BERT `[CLS]`-style — the right choice when the
    /// label hinges on a query placed at the sequence start, as in QA).
    First,
}

/// Hyperparameters of a Transformer model.
///
/// The same struct describes both the tiny trainable models used for the
/// accuracy experiments and the paper-scale shapes (BERT-large, GPT-2) used
/// for analytic FLOPs and simulator timing.
///
/// # Example
///
/// ```
/// use dota_transformer::TransformerConfig;
///
/// let cfg = TransformerConfig::bert_large(384);
/// assert_eq!(cfg.head_dim(), 64);
/// assert_eq!(cfg.d_model, 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Vocabulary size for token embedding.
    pub vocab_size: usize,
    /// Sequence length the model processes.
    pub seq_len: usize,
    /// Model (embedding) dimension `d`.
    pub d_model: usize,
    /// Number of attention heads per layer.
    pub n_heads: usize,
    /// Number of stacked encoder (or decoder) blocks.
    pub n_layers: usize,
    /// Hidden dimension of the feed-forward network.
    pub d_ff: usize,
    /// Number of output classes (classification heads) or vocabulary size
    /// (language modeling).
    pub n_classes: usize,
    /// `true` for GPT-style causal (decoder) attention.
    pub causal: bool,
    /// Sequence pooling for classification heads (ignored when causal).
    pub pooling: Pooling,
}

impl TransformerConfig {
    /// Per-head dimension `d_model / n_heads`.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `n_heads`.
    pub fn head_dim(&self) -> usize {
        assert!(
            self.d_model.is_multiple_of(self.n_heads),
            "d_model {} not divisible by n_heads {}",
            self.d_model,
            self.n_heads
        );
        self.d_model / self.n_heads
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.d_model == 0 || self.n_heads == 0 || self.n_layers == 0 {
            return Err("d_model, n_heads and n_layers must be positive".into());
        }
        if !self.d_model.is_multiple_of(self.n_heads) {
            return Err(format!(
                "d_model {} must be divisible by n_heads {}",
                self.d_model, self.n_heads
            ));
        }
        if self.seq_len == 0 {
            return Err("seq_len must be positive".into());
        }
        if self.vocab_size == 0 || self.n_classes == 0 {
            return Err("vocab_size and n_classes must be positive".into());
        }
        Ok(())
    }

    /// BERT-large shape (24 layers, d=1024, 16 heads, FFN 4096) at the given
    /// sequence length — the paper's QA benchmark model.
    pub fn bert_large(seq_len: usize) -> Self {
        Self {
            vocab_size: 30_522,
            seq_len,
            d_model: 1024,
            n_heads: 16,
            n_layers: 24,
            d_ff: 4096,
            n_classes: 2,
            causal: false,
            pooling: Pooling::First,
        }
    }

    /// GPT-2 (117M) shape (12 layers, d=768, 12 heads) at the given sequence
    /// length — the paper's LM benchmark model.
    pub fn gpt2(seq_len: usize) -> Self {
        Self {
            vocab_size: 50_257,
            seq_len,
            d_model: 768,
            n_heads: 12,
            n_layers: 12,
            d_ff: 3072,
            n_classes: 50_257,
            causal: true,
            pooling: Pooling::Mean,
        }
    }

    /// The LRA-style 4-layer encoder used for the Image/Text/Retrieval
    /// benchmarks in the paper's long-range suite.
    pub fn lra(seq_len: usize, n_classes: usize) -> Self {
        Self {
            vocab_size: 256,
            seq_len,
            d_model: 512,
            n_heads: 8,
            n_layers: 4,
            d_ff: 2048,
            n_classes,
            causal: false,
            pooling: Pooling::Mean,
        }
    }

    /// A tiny trainable encoder for the synthetic accuracy experiments.
    pub fn tiny(seq_len: usize, vocab_size: usize, n_classes: usize) -> Self {
        Self {
            vocab_size,
            seq_len,
            d_model: 32,
            n_heads: 2,
            n_layers: 2,
            d_ff: 64,
            n_classes,
            causal: false,
            pooling: Pooling::Mean,
        }
    }

    /// A tiny trainable causal decoder for the synthetic LM experiment.
    pub fn tiny_causal(seq_len: usize, vocab_size: usize) -> Self {
        Self {
            vocab_size,
            seq_len,
            d_model: 32,
            n_heads: 2,
            n_layers: 2,
            d_ff: 64,
            n_classes: vocab_size,
            causal: true,
            pooling: Pooling::Mean,
        }
    }

    /// Total trainable parameter count of the encoder stack plus embeddings
    /// and classifier (weights only; biases and layer norms included).
    pub fn param_count(&self) -> u64 {
        let d = self.d_model as u64;
        let ff = self.d_ff as u64;
        let per_layer = 4 * d * d          // WQ, WK, WV, WO
            + 4 * d            // attention biases folded (wo bias + ln1 gamma/beta ~ small)
            + d * ff + ff      // FC1
            + ff * d + d       // FC2
            + 4 * d; // two layer norms (gamma+beta each)
        let embed = (self.vocab_size as u64 + self.seq_len as u64) * d;
        let head = d * self.n_classes as u64 + self.n_classes as u64;
        embed + self.n_layers as u64 * per_layer + head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [
            TransformerConfig::bert_large(384),
            TransformerConfig::gpt2(4096),
            TransformerConfig::lra(1024, 10),
            TransformerConfig::tiny(64, 16, 2),
            TransformerConfig::tiny_causal(64, 16),
        ] {
            assert!(cfg.validate().is_ok(), "{cfg:?}");
        }
    }

    #[test]
    fn head_dim_matches_paper() {
        // The paper's σ example: "floor(64*0.2)=12, compared with the
        // original dimension 64" — LRA head dim is 64.
        assert_eq!(TransformerConfig::lra(2048, 2).head_dim(), 64);
        assert_eq!(TransformerConfig::bert_large(384).head_dim(), 64);
        assert_eq!(TransformerConfig::gpt2(4096).head_dim(), 64);
    }

    #[test]
    fn validate_catches_bad_configs() {
        let mut cfg = TransformerConfig::tiny(64, 16, 2);
        cfg.n_heads = 5; // 32 % 5 != 0
        assert!(cfg.validate().is_err());
        cfg = TransformerConfig::tiny(0, 16, 2);
        assert!(cfg.validate().is_err());
        cfg = TransformerConfig::tiny(64, 16, 2);
        cfg.n_layers = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn bert_large_param_count_magnitude() {
        // BERT-large has ~340M parameters; our count (without some bias
        // terms and pooler) must land in the same ballpark.
        let n = TransformerConfig::bert_large(384).param_count();
        assert!(n > 250_000_000 && n < 400_000_000, "{n}");
    }

    #[test]
    fn causal_flag_distinguishes_decoder() {
        assert!(TransformerConfig::gpt2(1024).causal);
        assert!(!TransformerConfig::bert_large(384).causal);
    }
}
