use crate::TransformerConfig;
use dota_autograd::{ParamId, ParamSet};
use dota_tensor::rng::SeededRng;
use dota_tensor::Matrix;

/// Parameter ids of one encoder/decoder block.
#[derive(Debug, Clone)]
pub struct LayerParams {
    /// Query projection `W_Q` (`d x d`).
    pub wq: ParamId,
    /// Key projection `W_K` (`d x d`).
    pub wk: ParamId,
    /// Value projection `W_V` (`d x d`).
    pub wv: ParamId,
    /// Output projection after head concat (`d x d`).
    pub wo: ParamId,
    /// First layer-norm gain (`1 x d`).
    pub ln1_gamma: ParamId,
    /// First layer-norm shift (`1 x d`).
    pub ln1_beta: ParamId,
    /// Second layer-norm gain (`1 x d`).
    pub ln2_gamma: ParamId,
    /// Second layer-norm shift (`1 x d`).
    pub ln2_beta: ParamId,
    /// FFN first layer weight (`d x d_ff`).
    pub w_ff1: ParamId,
    /// FFN first layer bias (`1 x d_ff`).
    pub b_ff1: ParamId,
    /// FFN second layer weight (`d_ff x d`).
    pub w_ff2: ParamId,
    /// FFN second layer bias (`1 x d`).
    pub b_ff2: ParamId,
}

/// All parameter ids of a Transformer model registered in a [`ParamSet`].
///
/// Construction seeds every weight deterministically so experiments are
/// reproducible.
#[derive(Debug, Clone)]
pub struct TransformerParams {
    /// Token embedding table (`vocab x d`).
    pub token_embedding: ParamId,
    /// Learned positional embedding (`seq_len x d`).
    pub pos_embedding: ParamId,
    /// Per-layer parameters.
    pub layers: Vec<LayerParams>,
    /// Classifier / LM head weight (`d x n_classes`).
    pub w_head: ParamId,
    /// Classifier / LM head bias (`1 x n_classes`).
    pub b_head: ParamId,
}

impl TransformerParams {
    /// Registers freshly-initialized parameters for `config` into `params`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn init(config: &TransformerConfig, params: &mut ParamSet, seed: u64) -> Self {
        config.validate().expect("invalid TransformerConfig");
        let mut rng = SeededRng::new(seed);
        let d = config.d_model;
        let token_embedding = params.add(
            "token_embedding",
            rng.normal_matrix(config.vocab_size, d, 0.02),
        );
        let pos_embedding = params.add("pos_embedding", rng.normal_matrix(config.seq_len, d, 0.02));
        let mut layers = Vec::with_capacity(config.n_layers);
        for l in 0..config.n_layers {
            let mk = |params: &mut ParamSet, name: &str, m: Matrix| {
                params.add(&format!("layer{l}.{name}"), m)
            };
            layers.push(LayerParams {
                wq: mk(params, "wq", rng.xavier(d, d)),
                wk: mk(params, "wk", rng.xavier(d, d)),
                wv: mk(params, "wv", rng.xavier(d, d)),
                wo: mk(params, "wo", rng.xavier(d, d)),
                ln1_gamma: mk(params, "ln1_gamma", Matrix::filled(1, d, 1.0)),
                ln1_beta: mk(params, "ln1_beta", Matrix::zeros(1, d)),
                ln2_gamma: mk(params, "ln2_gamma", Matrix::filled(1, d, 1.0)),
                ln2_beta: mk(params, "ln2_beta", Matrix::zeros(1, d)),
                w_ff1: mk(params, "w_ff1", rng.xavier(d, config.d_ff)),
                b_ff1: mk(params, "b_ff1", Matrix::zeros(1, config.d_ff)),
                w_ff2: mk(params, "w_ff2", rng.xavier(config.d_ff, d)),
                b_ff2: mk(params, "b_ff2", Matrix::zeros(1, d)),
            });
        }
        let w_head = params.add("w_head", rng.xavier(d, config.n_classes));
        let b_head = params.add("b_head", Matrix::zeros(1, config.n_classes));
        Self {
            token_embedding,
            pos_embedding,
            layers,
            w_head,
            b_head,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_registers_expected_param_count() {
        let cfg = TransformerConfig::tiny(16, 8, 2);
        let mut params = ParamSet::new();
        let tp = TransformerParams::init(&cfg, &mut params, 1);
        // 2 embeddings + 12 per layer * 2 layers + 2 head params.
        assert_eq!(params.len(), 2 + 12 * 2 + 2);
        assert_eq!(tp.layers.len(), 2);
        assert_eq!(params.value(tp.token_embedding).shape(), (8, 32));
        assert_eq!(params.value(tp.pos_embedding).shape(), (16, 32));
        assert_eq!(params.value(tp.w_head).shape(), (32, 2));
    }

    #[test]
    fn init_is_deterministic() {
        let cfg = TransformerConfig::tiny(8, 8, 2);
        let mut p1 = ParamSet::new();
        let t1 = TransformerParams::init(&cfg, &mut p1, 7);
        let mut p2 = ParamSet::new();
        let t2 = TransformerParams::init(&cfg, &mut p2, 7);
        assert_eq!(p1.value(t1.layers[0].wq), p2.value(t2.layers[0].wq));
        let mut p3 = ParamSet::new();
        let t3 = TransformerParams::init(&cfg, &mut p3, 8);
        assert_ne!(p1.value(t1.layers[0].wq), p3.value(t3.layers[0].wq));
    }

    #[test]
    fn layer_norm_initialized_to_identity() {
        let cfg = TransformerConfig::tiny(8, 8, 2);
        let mut params = ParamSet::new();
        let tp = TransformerParams::init(&cfg, &mut params, 1);
        assert!(params
            .value(tp.layers[0].ln1_gamma)
            .iter()
            .all(|&x| x == 1.0));
        assert!(params
            .value(tp.layers[0].ln1_beta)
            .iter()
            .all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "invalid TransformerConfig")]
    fn init_rejects_invalid_config() {
        let mut cfg = TransformerConfig::tiny(8, 8, 2);
        cfg.n_heads = 3;
        let mut params = ParamSet::new();
        let _ = TransformerParams::init(&cfg, &mut params, 1);
    }
}
