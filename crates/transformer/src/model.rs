use crate::hooks::{AttentionHook, HookOutcome};
use crate::{TransformerConfig, TransformerParams};
use dota_autograd::{Graph, ParamSet, Var};

/// Result of a trainable forward pass.
#[derive(Debug)]
pub struct TrainOutput {
    /// Logits node: `1 x n_classes` for classification (pooled), or
    /// `seq_len x n_classes` for causal language modeling.
    pub logits: Var,
    /// Auxiliary losses contributed by the [`AttentionHook`] (one per
    /// hooked head), to be combined as `L_model + λ·Σ L_aux`.
    pub aux_losses: Vec<Var>,
    /// Retention of every hook-supplied attention mask (one entry per
    /// hooked head, in layer/head order; empty when the hook never
    /// masked). Counted on the hook's mask *before* any causal
    /// intersection, so the ratio reflects the detector's keep decisions.
    pub mask_stats: Vec<MaskStat>,
}

/// How much of one head's attention a hook mask retained during a forward
/// pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskStat {
    /// Layer index.
    pub layer: usize,
    /// Head index within the layer.
    pub head: usize,
    /// Number of query–key connections the mask kept.
    pub kept: usize,
    /// Total connections (`n²` for sequence length `n`).
    pub total: usize,
}

impl MaskStat {
    /// Kept fraction `kept / total` (0 for an empty mask).
    pub fn retention(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.kept as f64 / self.total as f64
        }
    }
}

/// A Transformer model: configuration plus parameter handles.
///
/// The struct is cheap to clone; weights live in the external
/// [`ParamSet`].
#[derive(Debug, Clone)]
pub struct Model {
    config: TransformerConfig,
    params: TransformerParams,
}

impl Model {
    /// Creates a model over already-initialized parameters.
    pub fn new(config: TransformerConfig, params: TransformerParams) -> Self {
        Self { config, params }
    }

    /// Initializes fresh parameters into `params` and wraps them.
    pub fn init(config: TransformerConfig, params: &mut ParamSet, seed: u64) -> Self {
        let tp = TransformerParams::init(&config, params, seed);
        Self::new(config, tp)
    }

    /// The model configuration.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// The parameter handles.
    pub fn params(&self) -> &TransformerParams {
        &self.params
    }

    /// Trainable forward pass over one token sequence.
    ///
    /// Builds the full encoder stack on `g`. For every attention head the
    /// `hook` observes the scaled scores and may impose a sparse mask and
    /// contribute an auxiliary loss — the joint-optimization mechanism of
    /// paper §3.2. Causal models additionally apply the autoregressive mask
    /// (intersected with any hook mask).
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty, longer than `seq_len`, or contains an id
    /// outside the vocabulary.
    pub fn forward(
        &self,
        g: &mut Graph,
        params: &ParamSet,
        ids: &[usize],
        hook: &mut dyn AttentionHook,
    ) -> TrainOutput {
        let cfg = &self.config;
        let n = ids.len();
        assert!(
            n > 0 && n <= cfg.seq_len,
            "sequence length {n} out of range"
        );
        let hd = cfg.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();

        // Token + positional embedding.
        let tok_table = g.param(params, self.params.token_embedding);
        let tok = g.embedding(tok_table, ids.to_vec());
        let pos_table = g.param(params, self.params.pos_embedding);
        let pos = g.embedding(pos_table, (0..n).collect());
        let mut x = g.add(tok, pos);

        let mut aux_losses = Vec::new();
        let mut mask_stats = Vec::new();
        for (l, layer) in self.params.layers.iter().enumerate() {
            // Linear transformation stage: Q, K, V = X Wq, X Wk, X Wv.
            let wq = g.param(params, layer.wq);
            let wk = g.param(params, layer.wk);
            let wv = g.param(params, layer.wv);
            let q = g.matmul(x, wq);
            let k = g.matmul(x, wk);
            let v = g.matmul(x, wv);

            // Multi-head attention stage.
            let mut heads = Vec::with_capacity(cfg.n_heads);
            for h in 0..cfg.n_heads {
                let (c0, c1) = (h * hd, (h + 1) * hd);
                let qh = g.slice_cols(q, c0, c1);
                let kh = g.slice_cols(k, c0, c1);
                let vh = g.slice_cols(v, c0, c1);
                let raw = g.matmul_nt(qh, kh);
                let scores = g.scale(raw, scale);

                let HookOutcome { mask, aux_loss } = hook.on_scores(g, l, h, x, scores);
                if let Some(a) = aux_loss {
                    aux_losses.push(a);
                }
                if let Some(m) = &mask {
                    let kept = m.iter().flatten().filter(|&&keep| keep).count();
                    mask_stats.push(MaskStat {
                        layer: l,
                        head: h,
                        kept,
                        total: n * n,
                    });
                }
                let mask = combine_masks(n, cfg.causal, mask);
                let attn = match mask {
                    Some(m) => g.masked_softmax_rows(scores, m),
                    None => g.softmax_rows(scores),
                };
                heads.push(g.matmul(attn, vh));
            }
            let concat = g.hcat(&heads);
            let wo = g.param(params, layer.wo);
            let z = g.matmul(concat, wo);

            // Residual + LayerNorm.
            let res1 = g.add(x, z);
            let g1 = g.param(params, layer.ln1_gamma);
            let b1 = g.param(params, layer.ln1_beta);
            let normed1 = g.layer_norm(res1, g1, b1);

            // Feed-forward network stage.
            let w1 = g.param(params, layer.w_ff1);
            let bf1 = g.param(params, layer.b_ff1);
            let w2 = g.param(params, layer.w_ff2);
            let bf2 = g.param(params, layer.b_ff2);
            let h1 = g.matmul(normed1, w1);
            let h1b = g.add_bias(h1, bf1);
            let act = g.gelu(h1b);
            let h2 = g.matmul(act, w2);
            let h2b = g.add_bias(h2, bf2);

            let res2 = g.add(normed1, h2b);
            let g2 = g.param(params, layer.ln2_gamma);
            let b2 = g.param(params, layer.ln2_beta);
            x = g.layer_norm(res2, g2, b2);
        }

        // Output head.
        let wh = g.param(params, self.params.w_head);
        let bh = g.param(params, self.params.b_head);
        let logits = if cfg.causal {
            let proj = g.matmul(x, wh);
            g.add_bias(proj, bh)
        } else {
            let pooled = match cfg.pooling {
                crate::Pooling::Mean => g.mean_rows(x),
                crate::Pooling::First => {
                    // Select row 0 with a constant 1 x n selector so the
                    // gradient flows only into the first position.
                    let sel = g.constant(dota_tensor::Matrix::from_fn(1, n, |_, c| {
                        if c == 0 {
                            1.0
                        } else {
                            0.0
                        }
                    }));
                    g.matmul(sel, x)
                }
            };
            let proj = g.matmul(pooled, wh);
            g.add_bias(proj, bh)
        };
        TrainOutput {
            logits,
            aux_losses,
            mask_stats,
        }
    }

    /// Builds the classification loss (cross-entropy of the pooled logits
    /// against a single label).
    ///
    /// # Panics
    ///
    /// Panics if the model is causal.
    pub fn classification_loss(&self, g: &mut Graph, out: &TrainOutput, label: usize) -> Var {
        assert!(!self.config.causal, "use lm_loss for causal models");
        g.cross_entropy(out.logits, vec![label])
    }

    /// Builds the next-token language-modeling loss: position `t` predicts
    /// token `t+1`.
    ///
    /// # Panics
    ///
    /// Panics if the model is not causal or `ids` has fewer than 2 tokens.
    pub fn lm_loss(&self, g: &mut Graph, out: &TrainOutput, ids: &[usize]) -> Var {
        assert!(self.config.causal, "lm_loss requires a causal model");
        assert!(ids.len() >= 2, "need at least two tokens");
        let targets: Vec<usize> = ids[1..].to_vec();
        self.lm_loss_shifted(g, out, &targets)
    }

    /// LM loss against explicit per-position targets for positions
    /// `0..targets.len()`. Positions beyond `targets.len()` are excluded by
    /// construction of the graph (their logits receive zero gradient).
    fn lm_loss_shifted(&self, g: &mut Graph, out: &TrainOutput, targets: &[usize]) -> Var {
        let total = g.value(out.logits).rows();
        let used = targets.len();
        assert!(used <= total, "targets exceed positions");
        // Select the first `used` rows with a constant 0/1 selector matrix:
        // sel (used x total) * logits (total x C) keeps gradients flowing
        // only into the selected rows.
        let sel = dota_tensor::Matrix::from_fn(used, total, |r, c| if r == c { 1.0 } else { 0.0 });
        let sel = g.constant(sel);
        let picked = g.matmul(sel, out.logits);
        g.cross_entropy(picked, targets.to_vec())
    }

    /// Combines a model loss with hook auxiliary losses:
    /// `L = L_model + λ · mean(aux)` (Eq. 6).
    pub fn total_loss(
        &self,
        g: &mut Graph,
        model_loss: Var,
        out: &TrainOutput,
        lambda: f32,
    ) -> Var {
        if out.aux_losses.is_empty() || lambda == 0.0 {
            return model_loss;
        }
        let mut acc = out.aux_losses[0];
        for &a in &out.aux_losses[1..] {
            acc = g.add(acc, a);
        }
        let weight = lambda / out.aux_losses.len() as f32;
        g.add_scaled(model_loss, acc, weight)
    }
}

/// Intersects the causal lower-triangular mask with an optional hook mask.
/// Returns `None` when no masking is needed (non-causal, no hook mask).
fn combine_masks(
    n: usize,
    causal: bool,
    hook_mask: Option<Vec<Vec<bool>>>,
) -> Option<Vec<Vec<bool>>> {
    match (causal, hook_mask) {
        (false, m) => m,
        (true, None) => Some((0..n).map(|i| (0..n).map(|j| j <= i).collect()).collect()),
        (true, Some(mut m)) => {
            for (i, row) in m.iter_mut().enumerate() {
                for (j, keep) in row.iter_mut().enumerate() {
                    *keep = *keep && j <= i;
                }
                // A row with everything pruned would produce a zero output;
                // always keep the diagonal (a token may attend to itself).
                if !row.iter().any(|&b| b) {
                    row[i] = true;
                }
            }
            Some(m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHook;
    use dota_autograd::{Adam, Optimizer};

    fn tiny_model() -> (Model, ParamSet) {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny(12, 8, 2), &mut params, 42);
        (model, params)
    }

    #[test]
    fn forward_shapes() {
        let (model, params) = tiny_model();
        let mut g = Graph::new();
        let ids = vec![1, 2, 3, 4, 5];
        let out = model.forward(&mut g, &params, &ids, &mut NoHook);
        assert_eq!(g.value(out.logits).shape(), (1, 2));
        assert!(out.aux_losses.is_empty());
    }

    #[test]
    fn causal_forward_shapes() {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny_causal(12, 8), &mut params, 7);
        let mut g = Graph::new();
        let ids = vec![1, 2, 3, 4];
        let out = model.forward(&mut g, &params, &ids, &mut NoHook);
        assert_eq!(g.value(out.logits).shape(), (4, 8));
    }

    #[test]
    fn causal_position_ignores_future() {
        // Changing a future token must not change earlier positions' logits.
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny_causal(12, 8), &mut params, 7);
        let mut g1 = Graph::new();
        let out1 = model.forward(&mut g1, &params, &[1, 2, 3, 4], &mut NoHook);
        let mut g2 = Graph::new();
        let out2 = model.forward(&mut g2, &params, &[1, 2, 3, 7], &mut NoHook);
        let l1 = g1.value(out1.logits);
        let l2 = g2.value(out2.logits);
        for c in 0..8 {
            assert!((l1[(0, c)] - l2[(0, c)]).abs() < 1e-5);
            assert!((l1[(1, c)] - l2[(1, c)]).abs() < 1e-5);
            assert!((l1[(2, c)] - l2[(2, c)]).abs() < 1e-5);
        }
    }

    #[test]
    fn training_reduces_loss() {
        let (model, mut params) = tiny_model();
        let data: Vec<(Vec<usize>, usize)> = vec![
            (vec![1, 1, 1, 1], 0),
            (vec![2, 2, 2, 2], 1),
            (vec![1, 1, 1, 2], 0),
            (vec![2, 2, 2, 1], 1),
        ];
        let mut opt = Adam::new(0.01);
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..60 {
            let mut total = 0.0;
            for (ids, label) in &data {
                let mut g = Graph::new();
                let out = model.forward(&mut g, &params, ids, &mut NoHook);
                let loss = model.classification_loss(&mut g, &out, *label);
                total += g.value(loss)[(0, 0)];
                g.backward(loss);
                opt.step(&mut params, &g);
            }
            if epoch == 0 {
                first = total;
            }
            last = total;
        }
        assert!(last < first * 0.3, "loss {first} -> {last}");
    }

    #[test]
    fn lm_training_reduces_loss() {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny_causal(12, 8), &mut params, 3);
        let seq = vec![1, 2, 3, 1, 2, 3, 1, 2];
        let mut opt = Adam::new(0.01);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..80 {
            let mut g = Graph::new();
            let out = model.forward(&mut g, &params, &seq, &mut NoHook);
            let loss = model.lm_loss(&mut g, &out, &seq);
            let v = g.value(loss)[(0, 0)];
            if step == 0 {
                first = v;
            }
            last = v;
            g.backward(loss);
            opt.step(&mut params, &g);
        }
        assert!(last < first * 0.5, "lm loss {first} -> {last}");
    }

    #[test]
    fn hook_mask_changes_output() {
        struct PruneAll;
        impl AttentionHook for PruneAll {
            fn on_scores(
                &mut self,
                g: &mut Graph,
                _l: usize,
                _h: usize,
                _x: Var,
                scores: Var,
            ) -> HookOutcome {
                let n = g.value(scores).rows();
                // Keep only the diagonal.
                let mask = (0..n).map(|i| (0..n).map(|j| i == j).collect()).collect();
                HookOutcome {
                    mask: Some(mask),
                    aux_loss: None,
                }
            }
        }
        let (model, params) = tiny_model();
        let ids = vec![1, 2, 3, 4, 5];
        let mut g1 = Graph::new();
        let dense = model.forward(&mut g1, &params, &ids, &mut NoHook);
        let mut g2 = Graph::new();
        let sparse = model.forward(&mut g2, &params, &ids, &mut PruneAll);
        assert_ne!(g1.value(dense.logits), g2.value(sparse.logits));
    }

    #[test]
    fn hook_aux_loss_collected_and_combined() {
        struct AuxHook;
        impl AttentionHook for AuxHook {
            fn on_scores(
                &mut self,
                g: &mut Graph,
                _l: usize,
                _h: usize,
                _x: Var,
                scores: Var,
            ) -> HookOutcome {
                let zero = g.constant(dota_tensor::Matrix::zeros(
                    g.value(scores).rows(),
                    g.value(scores).cols(),
                ));
                let aux = g.mse(scores, zero);
                HookOutcome {
                    mask: None,
                    aux_loss: Some(aux),
                }
            }
        }
        let (model, params) = tiny_model();
        let mut g = Graph::new();
        let out = model.forward(&mut g, &params, &[1, 2, 3], &mut AuxHook);
        // 2 layers * 2 heads = 4 aux losses.
        assert_eq!(out.aux_losses.len(), 4);
        let ml = model.classification_loss(&mut g, &out, 0);
        let total = model.total_loss(&mut g, ml, &out, 0.5);
        assert!(g.value(total)[(0, 0)] >= g.value(ml)[(0, 0)]);
        // lambda = 0 short-circuits.
        let same = model.total_loss(&mut g, ml, &out, 0.0);
        assert_eq!(same, ml);
    }

    #[test]
    fn combine_masks_causal_keeps_diagonal() {
        // A hook mask that prunes everything in row 2 must still keep (2,2).
        let hook_mask = vec![
            vec![true, true, true],
            vec![true, true, true],
            vec![false, false, false],
        ];
        let m = combine_masks(3, true, Some(hook_mask)).unwrap();
        assert!(m[2][2]);
        assert!(!m[0][1], "causal must prune upper triangle");
        assert!(!m[0][2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn forward_rejects_long_sequence() {
        let (model, params) = tiny_model();
        let mut g = Graph::new();
        let ids = vec![0; 13];
        let _ = model.forward(&mut g, &params, &ids, &mut NoHook);
    }
}

#[cfg(test)]
mod gradient_tests {
    use super::*;
    use crate::hooks::NoHook;
    use crate::TransformerConfig;

    /// Whole-model gradient check on a micro configuration: the composed
    /// backward pass through embedding → attention → layer norm → FFN →
    /// pooling → cross-entropy must match central finite differences on
    /// representative parameters. This catches composition bugs the per-op
    /// checks cannot.
    #[test]
    fn whole_model_gradients_match_finite_differences() {
        let cfg = TransformerConfig {
            vocab_size: 5,
            seq_len: 4,
            d_model: 4,
            n_heads: 2,
            n_layers: 1,
            d_ff: 6,
            n_classes: 2,
            causal: false,
            pooling: crate::Pooling::Mean,
        };
        let mut params = ParamSet::new();
        let model = Model::init(cfg, &mut params, 3);
        let ids = vec![1usize, 4, 2, 0];
        let label = 1usize;

        let loss_of = |params: &ParamSet| -> f32 {
            let mut g = Graph::new();
            let out = model.forward(&mut g, params, &ids, &mut NoHook);
            let loss = model.classification_loss(&mut g, &out, label);
            g.value(loss)[(0, 0)]
        };

        // Analytic gradients from one backward pass.
        let mut g = Graph::new();
        let out = model.forward(&mut g, &params, &ids, &mut NoHook);
        let loss = model.classification_loss(&mut g, &out, label);
        g.backward(loss);

        let reps = [
            ("wq", model.params().layers[0].wq),
            ("w_ff1", model.params().layers[0].w_ff1),
            ("token_embedding", model.params().token_embedding),
            ("ln1_gamma", model.params().layers[0].ln1_gamma),
            ("w_head", model.params().w_head),
        ];
        let h = 1e-3f32;
        for (name, pid) in reps {
            let analytic = g.param_grad(pid).unwrap_or_else(|| {
                dota_tensor::Matrix::zeros(params.value(pid).rows(), params.value(pid).cols())
            });
            let (rows, cols) = params.value(pid).shape();
            // Spot-check a handful of coordinates per parameter.
            let coords: Vec<(usize, usize)> = (0..rows.min(3))
                .flat_map(|r| (0..cols.min(3)).map(move |c| (r, c)))
                .collect();
            for (r, c) in coords {
                let orig = params.value(pid)[(r, c)];
                params.value_mut(pid)[(r, c)] = orig + h;
                let plus = loss_of(&params);
                params.value_mut(pid)[(r, c)] = orig - h;
                let minus = loss_of(&params);
                params.value_mut(pid)[(r, c)] = orig;
                let numeric = (plus - minus) / (2.0 * h);
                let got = analytic[(r, c)];
                let denom = numeric.abs().max(got.abs()).max(0.1);
                assert!(
                    (numeric - got).abs() / denom < 5e-2,
                    "{name}[{r},{c}]: numeric {numeric} vs analytic {got}"
                );
            }
        }
    }
}
