//! A from-scratch Transformer with trainable and inference-only paths.
//!
//! This crate supplies the *model* half of DOTA's co-design (paper §2.1):
//! stacked encoder blocks of linear transformation → multi-head attention →
//! feed-forward network, with residual connections and layer norm, plus a
//! GPT-style causal variant for language modeling.
//!
//! Two forward paths are provided:
//!
//! * [`Model::forward`] builds the computation on a `dota-autograd`
//!   [`Graph`](dota_autograd::Graph) so the model can be trained — including
//!   *jointly* with an attention detector through the [`AttentionHook`]
//!   mechanism, which lets an external component observe each head's
//!   attention scores, contribute an auxiliary loss (the paper's `L_MSE`,
//!   Eq. 5) and impose a sparse attention mask (§3.2 model adaptation);
//! * [`Model::infer`] is a pure-`f32` forward that records a
//!   [`ForwardTrace`] of per-head Q/K/V and selected attention indices,
//!   which the accelerator simulator replays cycle by cycle.
//!
//! The [`flops`] module reproduces the analytic operation-count breakdown of
//! the paper's Figure 3.

#![deny(missing_docs)]

mod config;
pub mod flops;
mod generate;
mod hooks;
mod infer;
mod model;
mod params;

pub use config::{Pooling, TransformerConfig};
pub use generate::{DecodeSelector, DenseDecode, Generation, KvCache};
pub use hooks::{AttentionHook, HookOutcome, NoHook};
pub use infer::{ForwardTrace, HeadTrace, InferError, InferenceHook, LayerTrace};
pub use model::{MaskStat, Model, TrainOutput};
pub use params::TransformerParams;
