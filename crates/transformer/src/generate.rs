//! Autoregressive generation with a key/value cache (paper §4.4).
//!
//! Decoding processes tokens strictly sequentially: each new token computes
//! one query row, attends over all *cached* keys/values, and appends its own
//! K/V to the cache. This module implements that loop functionally — it is
//! the software twin of the accelerator's decoder mode, and the unit tests
//! pin it against the batch [`infer`](crate::Model::infer) path (the same
//! prompt must produce identical logits).

use crate::{Model, TransformerParams};
use dota_autograd::ParamSet;
use dota_tensor::{ops, Matrix};

/// Per-layer cached keys and values for incremental decoding.
#[derive(Debug, Clone)]
pub struct KvCache {
    /// Per layer: the `t x d_model` key matrix accumulated so far.
    keys: Vec<Matrix>,
    /// Per layer: the `t x d_model` value matrix accumulated so far.
    values: Vec<Matrix>,
}

impl KvCache {
    /// An empty cache for a model with `n_layers` layers and width `d`.
    pub fn new(n_layers: usize, d: usize) -> Self {
        Self {
            keys: (0..n_layers).map(|_| Matrix::zeros(0, d)).collect(),
            values: (0..n_layers).map(|_| Matrix::zeros(0, d)).collect(),
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.keys.first().map_or(0, Matrix::rows)
    }

    /// `true` if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The accumulated `t x d_model` key matrix of `layer` (tests pin its
    /// rows bitwise against the batch path's per-head key traces).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn keys(&self, layer: usize) -> &Matrix {
        &self.keys[layer]
    }

    /// The accumulated `t x d_model` value matrix of `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn values(&self, layer: usize) -> &Matrix {
        &self.values[layer]
    }

    fn append(&mut self, layer: usize, k_row: &Matrix, v_row: &Matrix) {
        let k = &mut self.keys[layer];
        *k = if k.rows() == 0 {
            k_row.clone()
        } else {
            Matrix::vcat(&[k, k_row]).expect("cache width fixed")
        };
        let v = &mut self.values[layer];
        *v = if v.rows() == 0 {
            v_row.clone()
        } else {
            Matrix::vcat(&[v, v_row]).expect("cache width fixed")
        };
    }
}

/// Selects which cached positions a decode step may attend to.
///
/// The DOTA detector restricts each step's attention to the strongest
/// `retention · t` cached entries; dense decoding attends to everything.
pub trait DecodeSelector {
    /// Keys (cache positions `0..t`) the current step of `(layer, head)`
    /// may attend to, given the step's input row `x` (`1 x d`). `None`
    /// means attend to all.
    fn select(&self, layer: usize, head: usize, x: &Matrix, cache_len: usize) -> Option<Vec<u32>>;
}

/// Dense decoding: attend to the full cache.
#[derive(Debug, Default, Clone, Copy)]
pub struct DenseDecode;

impl DecodeSelector for DenseDecode {
    fn select(&self, _l: usize, _h: usize, _x: &Matrix, _len: usize) -> Option<Vec<u32>> {
        None
    }
}

/// Result of a generation run.
#[derive(Debug, Clone)]
pub struct Generation {
    /// The generated token ids (excluding the prompt).
    pub tokens: Vec<usize>,
    /// Cached K/V connections attended per generated token (for the
    /// memory-traffic analysis).
    pub attended_per_token: Vec<u64>,
}

impl Model {
    /// Runs one token through the decoder incrementally, returning its
    /// output logits row and appending its K/V to the cache.
    ///
    /// # Panics
    ///
    /// Panics if the model is not causal, the token is out of vocabulary,
    /// or the cache already holds `seq_len` positions.
    pub fn decode_step(
        &self,
        params: &ParamSet,
        cache: &mut KvCache,
        token: usize,
        selector: &dyn DecodeSelector,
    ) -> (Matrix, u64) {
        let _prof = dota_prof::span("model.decode_step");
        let cfg = self.config();
        assert!(cfg.causal, "decode_step requires a causal model");
        assert!(token < cfg.vocab_size, "token {token} out of vocabulary");
        let pos = cache.len();
        assert!(pos < cfg.seq_len, "cache full ({} positions)", cfg.seq_len);
        let tp: &TransformerParams = self.params();
        let d = cfg.d_model;
        let hd = cfg.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();

        let tok_table = params.value(tp.token_embedding);
        let pos_table = params.value(tp.pos_embedding);
        let mut x = Matrix::from_fn(1, d, |_, c| tok_table[(token, c)] + pos_table[(pos, c)]);

        let mut attended = 0u64;
        for (l, layer) in tp.layers.iter().enumerate() {
            let q = x.matmul(params.value(layer.wq)).expect("shape");
            let k_new = x.matmul(params.value(layer.wk)).expect("shape");
            let v_new = x.matmul(params.value(layer.wv)).expect("shape");
            cache.append(l, &k_new, &v_new);
            let k_all = &cache.keys[l];
            let v_all = &cache.values[l];
            let t = k_all.rows();

            let mut head_outs = Vec::with_capacity(cfg.n_heads);
            for h in 0..cfg.n_heads {
                let (c0, c1) = (h * hd, (h + 1) * hd);
                let qh = q.slice_cols(c0, c1);
                let kh = k_all.slice_cols(c0, c1);
                let vh = v_all.slice_cols(c0, c1);
                let scores = qh.matmul_nt(&kh).expect("shape").scale(scale);
                // The current position (t-1) is always attendable; the
                // selector filters the older cache.
                let selected = selector.select(l, h, &x, t);
                let mask = match selected {
                    None => vec![vec![true; t]],
                    Some(keep) => {
                        let mut m = vec![false; t];
                        for &j in &keep {
                            if (j as usize) < t {
                                m[j as usize] = true;
                            }
                        }
                        m[t - 1] = true;
                        vec![m]
                    }
                };
                attended += mask[0].iter().filter(|&&b| b).count() as u64;
                let attn = ops::masked_softmax_rows(&scores, &mask);
                head_outs.push(attn.matmul(&vh).expect("shape"));
            }
            let refs: Vec<&Matrix> = head_outs.iter().collect();
            let z = Matrix::hcat(&refs)
                .expect("heads")
                .matmul(params.value(layer.wo))
                .expect("shape");
            let res1 = x.add(&z).expect("shape");
            let normed1 = ops::layer_norm(
                &res1,
                params.value(layer.ln1_gamma).row(0),
                params.value(layer.ln1_beta).row(0),
                1e-5,
            );
            let h1 = ops::add_bias(
                &normed1.matmul(params.value(layer.w_ff1)).expect("shape"),
                params.value(layer.b_ff1).row(0),
            );
            let h2 = ops::add_bias(
                &ops::gelu(&h1)
                    .matmul(params.value(layer.w_ff2))
                    .expect("shape"),
                params.value(layer.b_ff2).row(0),
            );
            let res2 = normed1.add(&h2).expect("shape");
            x = ops::layer_norm(
                &res2,
                params.value(layer.ln2_gamma).row(0),
                params.value(layer.ln2_beta).row(0),
                1e-5,
            );
        }
        let logits = ops::add_bias(
            &x.matmul(params.value(tp.w_head)).expect("shape"),
            params.value(tp.b_head).row(0),
        );
        (logits, attended)
    }

    /// Greedy generation: feeds `prompt`, then samples `n_new` tokens by
    /// argmax, attending through `selector`.
    ///
    /// # Panics
    ///
    /// Panics if the model is not causal, the prompt is empty, or
    /// `prompt.len() + n_new` exceeds `seq_len`.
    pub fn generate(
        &self,
        params: &ParamSet,
        prompt: &[usize],
        n_new: usize,
        selector: &dyn DecodeSelector,
    ) -> Generation {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(
            prompt.len() + n_new <= self.config().seq_len,
            "generation exceeds seq_len"
        );
        let mut cache = KvCache::new(self.config().n_layers, self.config().d_model);
        let mut last_logits = Matrix::zeros(1, self.config().n_classes);
        for &t in prompt {
            let (logits, _) = self.decode_step(params, &mut cache, t, selector);
            last_logits = logits;
        }
        let mut tokens = Vec::with_capacity(n_new);
        let mut attended_per_token = Vec::with_capacity(n_new);
        for _ in 0..n_new {
            let next = ops::argmax_rows(&last_logits)[0];
            let (logits, attended) = self.decode_step(params, &mut cache, next, selector);
            tokens.push(next);
            attended_per_token.push(attended);
            last_logits = logits;
        }
        Generation {
            tokens,
            attended_per_token,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoHook, TransformerConfig};

    fn causal_model() -> (Model, ParamSet) {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny_causal(16, 8), &mut params, 17);
        (model, params)
    }

    #[test]
    fn incremental_decode_matches_batch_inference() {
        let (model, params) = causal_model();
        let ids = vec![1usize, 4, 2, 7, 3];
        // Batch path.
        let trace = model.infer(&params, &ids, &NoHook);
        // Incremental path.
        let mut cache = KvCache::new(model.config().n_layers, model.config().d_model);
        let mut last = Matrix::zeros(1, 8);
        for &t in &ids {
            let (logits, attended) = model.decode_step(&params, &mut cache, t, &DenseDecode);
            assert_eq!(
                attended as usize,
                cache.len() * model.config().n_layers * model.config().n_heads
            );
            last = logits;
        }
        // The final step's logits must equal the batch path's final row
        // **bitwise**: every op involved (GEMM with fixed ascending-k
        // accumulation, row-wise softmax/layer-norm/GELU) is independent
        // of how many rows share the matrix, so incremental decode is the
        // same arithmetic as full recompute, not merely close to it.
        let batch_final = trace.logits.slice_rows(ids.len() - 1, ids.len());
        assert!(
            last == batch_final,
            "incremental {last:?} vs batch {batch_final:?}"
        );
    }

    /// Backfilling the KV cache token by token reproduces the batch
    /// path's per-head key/value traces **bitwise**: each K/V row is one
    /// `1 x d` GEMM whose per-element accumulation order is fixed
    /// (ascending k, shape-independent), so incremental append and
    /// full-prompt recompute must agree to the last bit. This is what
    /// makes a served request's cache state independent of how its prompt
    /// was chunked across scheduler steps.
    #[test]
    fn kv_cache_backfill_matches_batch_trace_bitwise() {
        let (model, params) = causal_model();
        let ids = vec![1usize, 4, 2, 7, 3, 5];
        let trace = model.infer(&params, &ids, &NoHook);
        let cfg = model.config();
        let mut cache = KvCache::new(cfg.n_layers, cfg.d_model);
        for &t in &ids {
            let _ = model.decode_step(&params, &mut cache, t, &DenseDecode);
        }
        let hd = cfg.head_dim();
        for (l, layer) in trace.layers.iter().enumerate() {
            assert_eq!(cache.keys(l).rows(), ids.len());
            assert_eq!(cache.values(l).rows(), ids.len());
            for (h, head) in layer.heads.iter().enumerate() {
                let (c0, c1) = (h * hd, (h + 1) * hd);
                assert!(
                    cache.keys(l).slice_cols(c0, c1) == head.k,
                    "layer {l} head {h}: cached keys differ from batch trace"
                );
                assert!(
                    cache.values(l).slice_cols(c0, c1) == head.v,
                    "layer {l} head {h}: cached values differ from batch trace"
                );
            }
        }
    }

    /// A cache built by decoding a prompt prefix then continuing with the
    /// remaining tokens holds exactly the same bits as one built in a
    /// single pass — append order is all that matters, not call grouping.
    #[test]
    fn kv_cache_append_is_chunking_invariant() {
        let (model, params) = causal_model();
        let ids = [3usize, 1, 6, 2, 4];
        let cfg = model.config();
        let mut one_pass = KvCache::new(cfg.n_layers, cfg.d_model);
        for &t in &ids {
            let _ = model.decode_step(&params, &mut one_pass, t, &DenseDecode);
        }
        for split in 1..ids.len() {
            let mut chunked = KvCache::new(cfg.n_layers, cfg.d_model);
            for &t in &ids[..split] {
                let _ = model.decode_step(&params, &mut chunked, t, &DenseDecode);
            }
            for &t in &ids[split..] {
                let _ = model.decode_step(&params, &mut chunked, t, &DenseDecode);
            }
            for l in 0..cfg.n_layers {
                assert!(
                    chunked.keys(l) == one_pass.keys(l),
                    "split {split}, layer {l}"
                );
                assert!(
                    chunked.values(l) == one_pass.values(l),
                    "split {split}, layer {l}"
                );
            }
        }
    }

    #[test]
    fn cache_grows_one_row_per_step() {
        let (model, params) = causal_model();
        let mut cache = KvCache::new(model.config().n_layers, model.config().d_model);
        assert!(cache.is_empty());
        for (i, &t) in [1usize, 2, 3].iter().enumerate() {
            let _ = model.decode_step(&params, &mut cache, t, &DenseDecode);
            assert_eq!(cache.len(), i + 1);
        }
    }

    #[test]
    fn generation_is_deterministic_and_in_vocab() {
        let (model, params) = causal_model();
        let g1 = model.generate(&params, &[1, 2, 3], 5, &DenseDecode);
        let g2 = model.generate(&params, &[1, 2, 3], 5, &DenseDecode);
        assert_eq!(g1.tokens, g2.tokens);
        assert_eq!(g1.tokens.len(), 5);
        assert!(g1.tokens.iter().all(|&t| t < 8));
    }

    #[test]
    fn sparse_selector_reduces_attended_connections() {
        struct KeepLastTwo;
        impl DecodeSelector for KeepLastTwo {
            fn select(&self, _l: usize, _h: usize, _x: &Matrix, len: usize) -> Option<Vec<u32>> {
                Some(((len.saturating_sub(2))..len).map(|i| i as u32).collect())
            }
        }
        let (model, params) = causal_model();
        let dense = model.generate(&params, &[1, 2, 3, 4, 5], 4, &DenseDecode);
        let sparse = model.generate(&params, &[1, 2, 3, 4, 5], 4, &KeepLastTwo);
        let dense_total: u64 = dense.attended_per_token.iter().sum();
        let sparse_total: u64 = sparse.attended_per_token.iter().sum();
        assert!(sparse_total < dense_total);
    }

    #[test]
    #[should_panic(expected = "cache full")]
    fn cache_capacity_enforced() {
        let (model, params) = causal_model();
        let mut cache = KvCache::new(model.config().n_layers, model.config().d_model);
        for t in 0..17 {
            let _ = model.decode_step(&params, &mut cache, t % 8, &DenseDecode);
        }
    }

    #[test]
    #[should_panic(expected = "requires a causal model")]
    fn encoder_cannot_decode() {
        let mut params = ParamSet::new();
        let model = Model::init(TransformerConfig::tiny(16, 8, 2), &mut params, 1);
        let mut cache = KvCache::new(2, 32);
        let _ = model.decode_step(&params, &mut cache, 1, &DenseDecode);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use crate::{Model, NoHook, TransformerConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Incremental decoding agrees with batch inference on the final
        /// position for arbitrary prompts.
        #[test]
        fn decode_matches_batch_on_random_prompts(
            ids in proptest::collection::vec(0usize..8, 1..12),
            seed in 0u64..4,
        ) {
            let mut params = dota_autograd::ParamSet::new();
            let model = Model::init(TransformerConfig::tiny_causal(12, 8), &mut params, seed);
            let mut cache = KvCache::new(model.config().n_layers, model.config().d_model);
            let mut last = Matrix::zeros(1, 8);
            for &t in &ids {
                let (logits, _) = model.decode_step(&params, &mut cache, t, &DenseDecode);
                last = logits;
            }
            let batch = model.infer(&params, &ids, &NoHook);
            let batch_final = batch.logits.slice_rows(ids.len() - 1, ids.len());
            prop_assert!(last.approx_eq(&batch_final, 1e-3));
        }
    }
}
