use crate::ShapeError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f32` matrix.
///
/// `Matrix` is the workhorse type of the workspace: activations, weights,
/// attention scores and masks-as-floats are all `Matrix` values. Data is
/// stored contiguously in row-major order, so `row(i)` is a contiguous
/// slice.
///
/// # Example
///
/// ```
/// use dota_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Example
    ///
    /// ```
    /// # use dota_tensor::Matrix;
    /// let m = Matrix::zeros(2, 2);
    /// assert_eq!(m.iter().sum::<f32>(), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates a `rows x cols` matrix with every element equal to `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by calling `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from a row-major `Vec`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the rows have differing lengths or the
    /// input is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, ShapeError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        if nrows == 0 || ncols == 0 {
            return Err(ShapeError::new("from_rows", (nrows, ncols), (0, 0)));
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(ShapeError::new("from_rows", (nrows, ncols), (1, row.len())));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        let cols = self.cols;
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Column `c` collected into a new `Vec`.
    ///
    /// Allocates per call — hot paths should use [`Matrix::col_iter`]
    /// (a strided view over the row-major storage) instead.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        self.col_iter(c).collect()
    }

    /// Iterator over column `c` without allocating: a stride-`cols` walk
    /// of the row-major storage.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = f32> + '_ {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        self.data
            .get(c..)
            .unwrap_or(&[]) // rows == 0: nothing to walk
            .iter()
            .step_by(self.cols)
            .copied()
    }

    /// The underlying row-major data slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major data slice, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major `Vec`.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Mutable iterator over all elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose as a new matrix.
    ///
    /// Tiled so both the row reads and the strided writes stay within one
    /// cache-sized block at a time.
    pub fn transpose(&self) -> Matrix {
        const TB: usize = 32;
        let mut out = Matrix::zeros(self.cols, self.rows);
        for rb in (0..self.rows).step_by(TB) {
            let re = (rb + TB).min(self.rows);
            for cb in (0..self.cols).step_by(TB) {
                let ce = (cb + TB).min(self.cols);
                for r in rb..re {
                    let row = &self.data[r * self.cols..(r + 1) * self.cols];
                    for c in cb..ce {
                        out.data[c * self.rows + r] = row[c];
                    }
                }
            }
        }
        out
    }

    /// Returns a new matrix with `f` applied element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two equally-shaped matrices.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn zip_map(
        &self,
        other: &Matrix,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("zip_map", self.shape(), other.shape()));
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("add", self.shape(), other.shape()));
        }
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("sub", self.shape(), other.shape()));
        }
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("hadamard", self.shape(), other.shape()));
        }
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`, returning a new matrix.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Extracts rows `r0..r1` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `r0 > r1` or `r1 > self.rows()`.
    pub fn slice_rows(&self, r0: usize, r1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "invalid row range {r0}..{r1}");
        Matrix {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        }
    }

    /// Extracts columns `c0..c1` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `c0 > c1` or `c1 > self.cols()`.
    pub fn slice_cols(&self, c0: usize, c1: usize) -> Matrix {
        assert!(c0 <= c1 && c1 <= self.cols, "invalid col range {c0}..{c1}");
        let width = c1 - c0;
        let mut data = Vec::with_capacity(self.rows * width);
        for r in 0..self.rows {
            data.extend_from_slice(&self.data[r * self.cols + c0..r * self.cols + c1]);
        }
        Matrix {
            rows: self.rows,
            cols: width,
            data,
        }
    }

    /// Concatenates matrices horizontally (same row count).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the inputs disagree on row count or the
    /// list is empty.
    pub fn hcat(parts: &[&Matrix]) -> Result<Matrix, ShapeError> {
        let first = parts
            .first()
            .ok_or(ShapeError::new("hcat", (0, 0), (0, 0)))?;
        let rows = first.rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        for p in parts {
            if p.rows != rows {
                return Err(ShapeError::new("hcat", (rows, cols), p.shape()));
            }
        }
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        Ok(out)
    }

    /// Concatenates matrices vertically (same column count).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the inputs disagree on column count or the
    /// list is empty.
    pub fn vcat(parts: &[&Matrix]) -> Result<Matrix, ShapeError> {
        let first = parts
            .first()
            .ok_or(ShapeError::new("vcat", (0, 0), (0, 0)))?;
        let cols = first.cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            if p.cols != cols {
                return Err(ShapeError::new("vcat", (rows, cols), p.shape()));
            }
            data.extend_from_slice(&p.data);
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element; `f32::NEG_INFINITY` for an empty matrix.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element; `f32::INFINITY` for an empty matrix.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum absolute element; `0.0` for an empty matrix.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, x| m.max(x.abs()))
    }

    /// `true` if the matrices agree element-wise within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            let row = self.row(r);
            let cells: Vec<String> = row.iter().take(8).map(|x| format!("{x:.4}")).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", cells.join(", "), ellipsis)?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.iter().all(|&x| x == 0.0));
        let f = Matrix::filled(2, 2, 7.5);
        assert!(f.iter().all(|&x| x == 7.5));
    }

    #[test]
    fn identity_diagonal() {
        let i = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 5]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let ok = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(ok.is_ok());
        let bad = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
        assert!(bad.is_err());
        let empty: Result<Matrix, _> = Matrix::from_rows(&[]);
        assert!(empty.is_err());
    }

    #[test]
    fn indexing_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(m.col(2), vec![2.0, 5.0]);
    }

    #[test]
    fn col_iter_matches_col() {
        let m = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
        for c in 0..3 {
            let viewed: Vec<f32> = m.col_iter(c).collect();
            assert_eq!(viewed, m.col(c));
        }
        let empty = Matrix::from_vec(0, 3, vec![]).unwrap();
        assert_eq!(empty.col_iter(2).count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t.transpose(), m);
        assert_eq!(t[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn add_sub_hadamard() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        assert_eq!(a.add(&b).unwrap().row(0), &[6.0, 8.0]);
        assert_eq!(b.sub(&a).unwrap().row(1), &[4.0, 4.0]);
        assert_eq!(a.hadamard(&b).unwrap().row(0), &[5.0, 12.0]);
        let c = Matrix::zeros(3, 2);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn hcat_vcat() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 3, 2.0);
        let h = Matrix::hcat(&[&a, &b]).unwrap();
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h.row(0), &[1.0, 1.0, 2.0, 2.0, 2.0]);

        let c = Matrix::filled(1, 2, 3.0);
        let v = Matrix::vcat(&[&a, &c]).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[3.0, 3.0]);

        assert!(Matrix::hcat(&[&a, &c]).is_err());
        let d = Matrix::filled(1, 3, 0.0);
        assert!(Matrix::vcat(&[&a, &d]).is_err());
    }

    #[test]
    fn slices() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let rows = m.slice_rows(1, 3);
        assert_eq!(rows.shape(), (2, 4));
        assert_eq!(rows[(0, 0)], 4.0);
        let cols = m.slice_cols(2, 4);
        assert_eq!(cols.shape(), (4, 2));
        assert_eq!(cols[(0, 0)], 2.0);
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(&[&[-1.0, 2.0], &[3.0, -4.0]]).unwrap();
        assert_eq!(m.sum(), 0.0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.max(), 3.0);
        assert_eq!(m.min(), -4.0);
        assert_eq!(m.abs_max(), 4.0);
        assert!((m.frobenius_norm() - (30.0_f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b[(0, 0)] = 1.0005;
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&Matrix::zeros(2, 3), 1.0));
    }

    #[test]
    fn map_and_zip() {
        let a = Matrix::filled(2, 2, 2.0);
        assert_eq!(a.map(|x| x * x).sum(), 16.0);
        assert_eq!(a.scale(0.5).sum(), 4.0);
        let mut b = a.clone();
        b.map_inplace(|x| x + 1.0);
        assert_eq!(b.sum(), 12.0);
    }

    #[test]
    fn debug_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m:?}").is_empty());
    }

    #[test]
    fn rows_iter_covers_all_rows() {
        let m = Matrix::from_fn(3, 2, |r, _| r as f32);
        let rows: Vec<&[f32]> = m.rows_iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[2.0, 2.0]);
    }
}
