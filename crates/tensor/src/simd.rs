//! Kernel families and packed SIMD microkernels for the GEMM hot path.
//!
//! Three families cover every host:
//!
//! * **`scalar`** — the original blocked/4-wide-unrolled kernels in
//!   `gemm.rs`: portable, and the correctness oracle the other families
//!   are property-tested against.
//! * **`simd`** — packed microkernels over `std::arch` f32 lanes (AVX2 on
//!   x86-64, NEON on aarch64) using *separate* multiply and add. Each
//!   output element still accumulates as one ascending-`k` chain, and
//!   `a*b` followed by `+` rounds exactly like the scalar code, so this
//!   family is **bit-identical** to `scalar` (and to the naive reference)
//!   — the committed golden `results/*.json` hold with it enabled. This is
//!   the `auto` default wherever the lanes exist.
//! * **`fma`** — the same packed microkernels with fused multiply-add.
//!   Fusing skips the intermediate rounding after the multiply, so results
//!   differ from `scalar` in the low bits (documented tolerance: a few
//!   ULPs per accumulation step; the property tests in
//!   `tests/simd_kernels.rs` pin it). Opt-in only, because bit-stability
//!   of recorded results is a repo-wide invariant; regenerate goldens
//!   deliberately if you switch training or figure runs to this family.
//!
//! Selection is `DOTA_GEMM` ∈ {`auto`, `scalar`, `simd`, `fma`} plus
//! runtime CPU feature detection; a requested family whose lanes are
//! missing falls back to the best available one ([`KernelFamily::active`];
//! front ends reject malformed values up front via
//! [`family_from_env_checked`]).
//!
//! Every family is deterministic: for a fixed kernel family the output is
//! a pure function of the operands — bitwise identical across
//! `DOTA_THREADS`, panel boundaries, and serial-vs-parallel builds.

use crate::pack::{pack_a_panel, pack_b_strip, Layout, PoolBuf};
use crate::Matrix;

#[cfg(feature = "parallel")]
use dota_parallel::{par_panels_mut, par_partition_mut};

/// Serial stand-in for `dota_parallel::par_partition_mut` when the
/// `parallel` feature is off: one span covering everything. Packing writes
/// are positional, so the partition never affects bits.
#[cfg(not(feature = "parallel"))]
fn par_partition_mut<T: Send>(data: &mut [T], _unit: usize, f: impl Fn(usize, &mut [T]) + Sync) {
    if !data.is_empty() {
        f(0, data);
    }
}

/// Serial stand-in for `dota_parallel::par_panels_mut` when the `parallel`
/// feature is off, walking the identical panelization in order.
#[cfg(not(feature = "parallel"))]
fn par_panels_mut<T: Send>(
    data: &mut [T],
    unit: usize,
    panel_units: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    if data.is_empty() {
        return;
    }
    let n_units = data.len() / unit;
    let mut u = 0;
    while u < n_units {
        let len = panel_units.min(n_units - u);
        f(u, &mut data[u * unit..(u + len) * unit]);
        u += len;
    }
}

/// Name of the environment variable selecting the kernel family.
pub const GEMM_ENV: &str = "DOTA_GEMM";

/// Rows per microkernel tile (register blocking in the M dimension).
pub(crate) const MR: usize = 4;

/// Output columns per microkernel tile on x86-64 (two 8-lane vectors);
/// aarch64 and the scalar edge kernel use the same logical width so panel
/// layouts are identical across architectures.
pub(crate) const NR: usize = 16;

/// Output rows per parallel work unit: panels this tall keep one worker's
/// A-panel plus one B-strip inside a typical per-core L2 while giving the
/// work-stealing scheduler enough panels to balance.
pub(crate) const MC: usize = 64;

/// A GEMM kernel family — see the module docs for the contract of each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelFamily {
    /// Portable blocked/unrolled scalar kernels (the oracle).
    Scalar,
    /// Packed mul+add SIMD microkernels, bit-identical to `Scalar`.
    Simd,
    /// Packed fused-multiply-add microkernels, fastest, numerics shift.
    Fma,
}

impl KernelFamily {
    /// The family's `DOTA_GEMM` spelling.
    pub fn name(self) -> &'static str {
        match self {
            KernelFamily::Scalar => "scalar",
            KernelFamily::Simd => "simd",
            KernelFamily::Fma => "fma",
        }
    }

    /// The family the GEMM entry points will use right now: `DOTA_GEMM`
    /// (default `auto`) clamped to what the host supports. `auto` resolves
    /// to `simd` when SIMD lanes are detected, else `scalar`; `fma`
    /// degrades to `simd` without FMA units, and both degrade to `scalar`
    /// without SIMD lanes. The variable is re-read per dispatch (cost is
    /// trivial next to any product worth optimizing) so tests and benches
    /// can toggle families at runtime.
    pub fn active() -> KernelFamily {
        let requested = match std::env::var(GEMM_ENV) {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "scalar" => Some(KernelFamily::Scalar),
                "simd" => Some(KernelFamily::Simd),
                "fma" => Some(KernelFamily::Fma),
                _ => None, // auto / malformed: silent best-available
            },
            Err(_) => None,
        };
        match requested {
            Some(KernelFamily::Scalar) => KernelFamily::Scalar,
            Some(KernelFamily::Fma) if fma_available() => KernelFamily::Fma,
            Some(KernelFamily::Fma) | Some(KernelFamily::Simd) | None => {
                if simd_available() {
                    KernelFamily::Simd
                } else {
                    KernelFamily::Scalar
                }
            }
        }
    }
}

/// [`KernelFamily::active`] that surfaces a malformed or unsupported
/// `DOTA_GEMM` as an error instead of silently degrading — front ends call
/// this from `validate_env` so a typo'd family (which would invalidate a
/// benchmark) fails loudly.
///
/// # Errors
///
/// A description of the bad value when `DOTA_GEMM` is set but is not one
/// of `auto`/`scalar`/`simd`/`fma`, or names a family the host's CPU
/// cannot run.
pub fn family_from_env_checked() -> Result<KernelFamily, String> {
    match std::env::var(GEMM_ENV) {
        Err(_) => Ok(KernelFamily::active()),
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(KernelFamily::active()),
            "scalar" => Ok(KernelFamily::Scalar),
            "simd" if simd_available() => Ok(KernelFamily::Simd),
            "fma" if fma_available() => Ok(KernelFamily::Fma),
            "simd" | "fma" => Err(format!(
                "{GEMM_ENV}={v} requires SIMD lanes this CPU does not report \
                 (detected: {})",
                cpu_features().join("+")
            )),
            _ => Err(format!(
                "{GEMM_ENV} must be one of auto|scalar|simd|fma, got `{v}`"
            )),
        },
    }
}

/// `true` when the packed SIMD (mul+add) family can run on this host.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(target_arch = "aarch64")]
    {
        true // NEON is baseline on aarch64.
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// `true` when the fused-multiply-add family can run on this host.
pub fn fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(target_arch = "aarch64")]
    {
        true // FMLA is baseline NEON on aarch64.
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// The SIMD capabilities detected on this host, for bench provenance
/// (`BENCH_kernels.json`, run manifests): pool-speedup and kernel-family
/// numbers are only interpretable next to what the machine could run.
pub fn cpu_features() -> Vec<&'static str> {
    let mut f = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            f.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            f.push("fma");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            f.push("avx512f");
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        f.push("neon");
    }
    if f.is_empty() {
        f.push("none");
    }
    f
}

/// One `MR×NR` register tile: continues every output element's ascending-k
/// accumulation chain from the values already in `c` (row stride `ldc`)
/// across `k` packed depth steps.
///
/// # Safety
///
/// `ap` must hold `k*MR` readable floats, `bp` `k*NR`, and `c` an
/// `MR`-row × `NR`-column tile at row stride `ldc`; the caller must have
/// verified the CPU features of the concrete kernel.
type MicroFn = unsafe fn(k: usize, ap: *const f32, bp: *const f32, c: *mut f32, ldc: usize);

/// Portable tile kernel with the exact scalar chain; used for whole
/// products only in tests (families dispatch to a lane kernel whenever one
/// exists, and fall back to the legacy scalar kernels otherwise).
///
/// # Safety
///
/// See [`MicroFn`].
#[cfg(test)]
unsafe fn micro_tile_portable(k: usize, ap: *const f32, bp: *const f32, c: *mut f32, ldc: usize) {
    for ii in 0..MR {
        for jj in 0..NR {
            let mut acc = *c.add(ii * ldc + jj);
            for kk in 0..k {
                acc += *ap.add(kk * MR + ii) * *bp.add(kk * NR + jj);
            }
            *c.add(ii * ldc + jj) = acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};
    use std::arch::x86_64::*;

    macro_rules! avx2_micro {
        ($name:ident, $feature:literal, $mac:expr) => {
            /// # Safety
            ///
            /// See [`super::MicroFn`]; requires the named target feature.
            #[target_feature(enable = $feature)]
            pub unsafe fn $name(
                k: usize,
                mut ap: *const f32,
                mut bp: *const f32,
                c: *mut f32,
                ldc: usize,
            ) {
                debug_assert_eq!((MR, NR), (4, 16));
                // 4×16 tile = eight 8-lane accumulators: enough
                // independent add/FMA chains to hide instruction latency
                // at two vector ops per cycle.
                let mut acc: [[__m256; 2]; 4] = [
                    [_mm256_loadu_ps(c), _mm256_loadu_ps(c.add(8))],
                    [_mm256_loadu_ps(c.add(ldc)), _mm256_loadu_ps(c.add(ldc + 8))],
                    [
                        _mm256_loadu_ps(c.add(2 * ldc)),
                        _mm256_loadu_ps(c.add(2 * ldc + 8)),
                    ],
                    [
                        _mm256_loadu_ps(c.add(3 * ldc)),
                        _mm256_loadu_ps(c.add(3 * ldc + 8)),
                    ],
                ];
                for _ in 0..k {
                    let b0 = _mm256_loadu_ps(bp);
                    let b1 = _mm256_loadu_ps(bp.add(8));
                    for ii in 0..MR {
                        let a = _mm256_broadcast_ss(&*ap.add(ii));
                        acc[ii][0] = $mac(acc[ii][0], a, b0);
                        acc[ii][1] = $mac(acc[ii][1], a, b1);
                    }
                    ap = ap.add(MR);
                    bp = bp.add(NR);
                }
                for (ii, row) in acc.iter().enumerate() {
                    _mm256_storeu_ps(c.add(ii * ldc), row[0]);
                    _mm256_storeu_ps(c.add(ii * ldc + 8), row[1]);
                }
            }
        };
    }

    // Exact family: separate multiply and add round exactly like the
    // scalar `acc += a * b`, keeping the family bit-identical to it.
    avx2_micro!(micro_avx2_exact, "avx2", |acc, a, b| _mm256_add_ps(
        acc,
        _mm256_mul_ps(a, b)
    ));
    // FMA family: single rounding per step — faster, low bits differ.
    avx2_micro!(micro_avx2_fma, "avx2,fma", |acc, a, b| _mm256_fmadd_ps(
        a, b, acc
    ));

    /// Reassociated FMA dot product: four 8-lane accumulator chains, then
    /// a lane reduction — the `fma` family's matvec kernel. Not
    /// bit-compatible with the sequential scalar chain.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; slices must be equal length.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_fma(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let mut acc = [_mm256_setzero_ps(); 4];
        let mut i = 0;
        while i + 32 <= n {
            for (q, lane) in acc.iter_mut().enumerate() {
                let av = _mm256_loadu_ps(a.as_ptr().add(i + 8 * q));
                let bv = _mm256_loadu_ps(b.as_ptr().add(i + 8 * q));
                *lane = _mm256_fmadd_ps(av, bv, *lane);
            }
            i += 32;
        }
        while i + 8 <= n {
            let av = _mm256_loadu_ps(a.as_ptr().add(i));
            let bv = _mm256_loadu_ps(b.as_ptr().add(i));
            acc[0] = _mm256_fmadd_ps(av, bv, acc[0]);
            i += 8;
        }
        let sum = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), sum);
        let mut total: f32 = lanes.iter().sum();
        while i < n {
            total = a[i].mul_add(b[i], total);
            i += 1;
        }
        total
    }
}

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::{MR, NR};
    use std::arch::aarch64::*;

    macro_rules! neon_micro {
        ($name:ident, $mac:expr) => {
            /// # Safety
            ///
            /// See [`super::MicroFn`]. NEON is baseline on aarch64.
            pub unsafe fn $name(
                k: usize,
                mut ap: *const f32,
                mut bp: *const f32,
                c: *mut f32,
                ldc: usize,
            ) {
                debug_assert_eq!((MR, NR), (4, 16));
                // Same logical 4×16 tile as x86, as four 4-lane vectors
                // per row so the panel layouts match across architectures.
                let mut acc: [[float32x4_t; 4]; 4] = [[vdupq_n_f32(0.0); 4]; 4];
                for (ii, row) in acc.iter_mut().enumerate() {
                    for (q, lane) in row.iter_mut().enumerate() {
                        *lane = vld1q_f32(c.add(ii * ldc + 4 * q));
                    }
                }
                for _ in 0..k {
                    let b: [float32x4_t; 4] = [
                        vld1q_f32(bp),
                        vld1q_f32(bp.add(4)),
                        vld1q_f32(bp.add(8)),
                        vld1q_f32(bp.add(12)),
                    ];
                    for (ii, row) in acc.iter_mut().enumerate() {
                        let a = vdupq_n_f32(*ap.add(ii));
                        for (lane, &bq) in row.iter_mut().zip(b.iter()) {
                            *lane = $mac(*lane, a, bq);
                        }
                    }
                    ap = ap.add(MR);
                    bp = bp.add(NR);
                }
                for (ii, row) in acc.iter().enumerate() {
                    for (q, &lane) in row.iter().enumerate() {
                        vst1q_f32(c.add(ii * ldc + 4 * q), lane);
                    }
                }
            }
        };
    }

    neon_micro!(micro_neon_exact, |acc, a, b| vaddq_f32(
        acc,
        vmulq_f32(a, b)
    ));
    neon_micro!(micro_neon_fma, |acc, a, b| vfmaq_f32(acc, b, a));

    /// Reassociated FMA dot product (four 4-lane chains); see the x86
    /// counterpart for the contract.
    ///
    /// # Safety
    ///
    /// Slices must be equal length. NEON is baseline on aarch64.
    pub unsafe fn dot_fma(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let mut acc = [vdupq_n_f32(0.0); 4];
        let mut i = 0;
        while i + 16 <= n {
            for (q, lane) in acc.iter_mut().enumerate() {
                let av = vld1q_f32(a.as_ptr().add(i + 4 * q));
                let bv = vld1q_f32(b.as_ptr().add(i + 4 * q));
                *lane = vfmaq_f32(*lane, av, bv);
            }
            i += 16;
        }
        while i + 4 <= n {
            let av = vld1q_f32(a.as_ptr().add(i));
            let bv = vld1q_f32(b.as_ptr().add(i));
            acc[0] = vfmaq_f32(acc[0], av, bv);
            i += 4;
        }
        let sum = vaddq_f32(vaddq_f32(acc[0], acc[1]), vaddq_f32(acc[2], acc[3]));
        let mut total = vaddvq_f32(sum);
        while i < n {
            total = a[i].mul_add(b[i], total);
            i += 1;
        }
        total
    }
}

/// The lane microkernel for a family, or `None` when the host has no lanes
/// (the caller then uses the legacy scalar kernels).
fn micro_for(family: KernelFamily) -> Option<MicroFn> {
    match family {
        KernelFamily::Scalar => None,
        KernelFamily::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                simd_available().then_some(x86::micro_avx2_exact as MicroFn)
            }
            #[cfg(target_arch = "aarch64")]
            {
                Some(arm::micro_neon_exact as MicroFn)
            }
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            {
                None
            }
        }
        KernelFamily::Fma => {
            #[cfg(target_arch = "x86_64")]
            {
                fma_available().then_some(x86::micro_avx2_fma as MicroFn)
            }
            #[cfg(target_arch = "aarch64")]
            {
                Some(arm::micro_neon_fma as MicroFn)
            }
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            {
                None
            }
        }
    }
}

/// Reassociated multi-chain SIMD dot product for the `fma` family's
/// matvec, or `None` when the host lacks FMA lanes (callers then use the
/// exact sequential chain). Documented numerics shift: the four partial
/// chains plus fused rounding make this differ from the scalar chain in
/// the low bits, like the `fma` GEMM family it belongs to.
pub(crate) fn fma_dot(a: &[f32], b: &[f32]) -> Option<f32> {
    debug_assert_eq!(a.len(), b.len());
    if !fma_available() {
        return None;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: FMA support verified above; equal lengths asserted.
        unsafe { Some(x86::dot_fma(a, b)) }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is baseline; equal lengths asserted.
        unsafe { Some(arm::dot_fma(a, b)) }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        None
    }
}

/// Whether `family` will take the packed path for a product of `flops`
/// multiply-adds; below the cutoff the packing copies cost more than they
/// save and the legacy blocked kernels run instead (same bits for the
/// `simd` family, so the cutoff is purely a performance knob).
pub(crate) fn packed_kernel(family: KernelFamily, flops: usize) -> Option<MicroFn> {
    const PACK_CUTOFF_FLOPS: usize = 16 * 16 * 16;
    if flops < PACK_CUTOFF_FLOPS {
        return None;
    }
    micro_for(family)
}

/// Runs one packed GEMM: packs `b` once (strip-parallel), then fans the
/// output's `MC`-row panels out over the work-stealing scheduler; each
/// worker packs its own A-panel into a pooled buffer and walks
/// `MR×NR` register tiles with `micro`.
///
/// `out` must already be shaped `m_out × n_out` and zeroed (or hold the
/// values the accumulation chains should continue from).
pub(crate) fn packed_gemm(
    layout: Layout,
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    micro: MicroFn,
) {
    let (m, n) = out.shape();
    let k_dim = match layout {
        Layout::Nn | Layout::Nt => a.cols(),
        Layout::Tn => a.rows(),
    };
    if m == 0 || n == 0 {
        return;
    }
    if k_dim == 0 {
        out.as_mut_slice().fill(0.0);
        return;
    }
    let n_strips = n.div_ceil(NR);
    let mut b_pack = PoolBuf::take(n_strips * k_dim * NR);
    // Strips are independent: pack them across the pool. One strip is one
    // unit, so the partition is on strip boundaries.
    par_partition_mut(b_pack.as_mut_slice(), k_dim * NR, |first_strip, span| {
        for (s, strip) in span.chunks_mut(k_dim * NR).enumerate() {
            pack_b_strip(layout, b, (first_strip + s) * NR, NR, strip);
        }
    });
    let b_pack = b_pack.as_slice();

    let cols = n;
    par_panels_mut(out.as_mut_slice(), cols, MC, |first_row, span| {
        let rows = span.len() / cols;
        let row_strips = rows.div_ceil(MR);
        let mut a_pack = PoolBuf::take(row_strips * MR * k_dim);
        pack_a_panel(layout, a, first_row, rows, MR, a_pack.as_mut_slice());
        let ap = a_pack.as_slice();
        // Edge tiles run through the same microkernel against a
        // zero-padded stack tile, then copy the live region back — the
        // per-element chains are identical to a full tile's.
        let mut edge = [0.0f32; MR * NR];
        for s in 0..row_strips {
            let strip_rows = MR.min(rows - s * MR);
            let a_strip = &ap[s * MR * k_dim..];
            for js in 0..n_strips {
                let strip_cols = NR.min(n - js * NR);
                let b_strip = &b_pack[js * k_dim * NR..];
                let c0 = s * MR * cols + js * NR;
                if strip_rows == MR && strip_cols == NR {
                    // SAFETY: full tile inside the span; panel buffers
                    // hold k_dim packed steps; feature support was checked
                    // when `micro` was selected.
                    unsafe {
                        micro(
                            k_dim,
                            a_strip.as_ptr(),
                            b_strip.as_ptr(),
                            span.as_mut_ptr().add(c0),
                            cols,
                        );
                    }
                } else {
                    for ii in 0..strip_rows {
                        let src = &span[c0 + ii * cols..c0 + ii * cols + strip_cols];
                        edge[ii * NR..ii * NR + strip_cols].copy_from_slice(src);
                    }
                    for ii in strip_rows..MR {
                        edge[ii * NR..(ii + 1) * NR].fill(0.0);
                    }
                    // SAFETY: the edge tile is a full MR×NR scratch
                    // buffer with row stride NR.
                    unsafe {
                        micro(
                            k_dim,
                            a_strip.as_ptr(),
                            b_strip.as_ptr(),
                            edge.as_mut_ptr(),
                            NR,
                        );
                    }
                    for ii in 0..strip_rows {
                        let dst = &mut span[c0 + ii * cols..c0 + ii * cols + strip_cols];
                        dst.copy_from_slice(&edge[ii * NR..ii * NR + strip_cols]);
                    }
                }
            }
        }
    });
}

/// Runs `body` with `DOTA_GEMM` set to `val` (unset for `None`), restoring
/// the previous value afterwards. All in-process env mutations serialize
/// on one lock — the environment is process-global state.
#[cfg(test)]
pub(crate) fn with_gemm_env<R>(val: Option<&str>, body: impl FnOnce() -> R) -> R {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::env::var(GEMM_ENV).ok();
    match val {
        Some(v) => std::env::set_var(GEMM_ENV, v),
        None => std::env::remove_var(GEMM_ENV),
    }
    let out = body();
    match prev {
        Some(v) => std::env::set_var(GEMM_ENV, v),
        None => std::env::remove_var(GEMM_ENV),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::rng::SeededRng;

    #[test]
    fn family_selection_clamps_to_host() {
        with_gemm_env(Some("scalar"), || {
            assert_eq!(KernelFamily::active(), KernelFamily::Scalar);
        });
        with_gemm_env(Some("simd"), || {
            let fam = KernelFamily::active();
            if simd_available() {
                assert_eq!(fam, KernelFamily::Simd);
            } else {
                assert_eq!(fam, KernelFamily::Scalar);
            }
        });
        with_gemm_env(None, || {
            // auto never selects the numerics-shifting family.
            assert_ne!(KernelFamily::active(), KernelFamily::Fma);
        });
        with_gemm_env(Some("typo"), || {
            // Malformed values behave like auto on the silent path …
            let _ = KernelFamily::active();
            // … and error on the checked one.
            let err = family_from_env_checked().unwrap_err();
            assert!(err.contains(GEMM_ENV), "{err}");
            assert!(err.contains("typo"), "{err}");
        });
    }

    #[test]
    fn cpu_features_nonempty() {
        assert!(!cpu_features().is_empty());
    }

    #[test]
    fn portable_tile_matches_reference_chain() {
        let mut rng = SeededRng::new(9);
        let a = rng.normal_matrix(MR, 13, 1.0);
        let b = rng.normal_matrix(13, NR, 1.0);
        let mut ap = vec![0.0; MR * 13];
        let mut bp = vec![0.0; 13 * NR];
        pack_a_panel(Layout::Nn, &a, 0, MR, MR, &mut ap);
        pack_b_strip(Layout::Nn, &b, 0, NR, &mut bp);
        let mut c = vec![0.0f32; MR * NR];
        // SAFETY: buffers sized to the tile contract above.
        unsafe { micro_tile_portable(13, ap.as_ptr(), bp.as_ptr(), c.as_mut_ptr(), NR) };
        let want = reference::matmul(&a, &b);
        for i in 0..MR {
            for j in 0..NR {
                assert_eq!(c[i * NR + j].to_bits(), want[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn lane_kernels_match_portable_tile_bitwise() {
        // The mul+add lane kernel must reproduce the scalar chain exactly;
        // this is the keystone of golden-result stability under `simd`.
        let Some(micro) = micro_for(KernelFamily::Simd) else {
            return; // host without lanes: nothing to check
        };
        let mut rng = SeededRng::new(10);
        for k in [1usize, 4, 7, 64] {
            let a = rng.normal_matrix(MR, k, 1.0);
            let b = rng.normal_matrix(k, NR, 1.0);
            let mut ap = vec![0.0; MR * k];
            let mut bp = vec![0.0; k * NR];
            pack_a_panel(Layout::Nn, &a, 0, MR, MR, &mut ap);
            pack_b_strip(Layout::Nn, &b, 0, NR, &mut bp);
            let mut lane = vec![0.5f32; MR * NR];
            let mut port = vec![0.5f32; MR * NR];
            // SAFETY: sized per the tile contract; lane support verified
            // by micro_for.
            unsafe {
                micro(k, ap.as_ptr(), bp.as_ptr(), lane.as_mut_ptr(), NR);
                micro_tile_portable(k, ap.as_ptr(), bp.as_ptr(), port.as_mut_ptr(), NR);
            }
            let lane_bits: Vec<u32> = lane.iter().map(|x| x.to_bits()).collect();
            let port_bits: Vec<u32> = port.iter().map(|x| x.to_bits()).collect();
            assert_eq!(lane_bits, port_bits, "k={k}");
        }
    }
}
