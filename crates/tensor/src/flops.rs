//! FLOP accounting helpers.
//!
//! Figure 3 of the paper breaks a Transformer encoder's floating-point
//! operations into *attention* (the parameter-free `QK^T` and `A*V` GEMMs)
//! versus *other* (linear transformations and the FFN, whose cost is linear
//! in sequence length). These helpers count multiply-accumulate work so that
//! the figure can be regenerated analytically.

/// FLOPs of a dense `m x k` by `k x n` matrix product, counting one multiply
/// and one add per MAC (`2*m*k*n`).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

/// FLOPs of a row-wise softmax over an `m x n` matrix.
///
/// Counts one exponential (modeled as 1 FLOP), one subtract, one add into the
/// accumulator and one divide per element, plus the row max scan.
pub fn softmax_flops(m: usize, n: usize) -> u64 {
    5 * m as u64 * n as u64
}

/// FLOPs of layer normalization over an `m x n` matrix (mean, variance,
/// normalize, scale+shift ≈ 8 per element).
pub fn layer_norm_flops(m: usize, n: usize) -> u64 {
    8 * m as u64 * n as u64
}

/// FLOPs of a GELU over `m x n` elements (tanh approximation ≈ 10 per
/// element).
pub fn gelu_flops(m: usize, n: usize) -> u64 {
    10 * m as u64 * n as u64
}

/// FLOPs of a *sparse* attention aggregation that keeps `kept` connections
/// out of `n^2`, with head dimension `hd`: score computation plus weighted
/// aggregation, `2 * 2 * hd` per kept connection.
pub fn sparse_attention_flops(kept: u64, hd: usize) -> u64 {
    4 * kept * hd as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops_counts_macs_twice() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemm_flops(0, 3, 4), 0);
    }

    #[test]
    fn sparse_equals_dense_at_full_retention() {
        let n = 64u64;
        let hd = 64;
        let dense = gemm_flops(64, hd, 64) + gemm_flops(64, 64, hd);
        let sparse = sparse_attention_flops(n * n, hd);
        assert_eq!(dense, sparse);
    }

    #[test]
    fn auxiliary_costs_positive() {
        assert!(softmax_flops(4, 4) > 0);
        assert!(layer_norm_flops(4, 4) > 0);
        assert!(gelu_flops(4, 4) > 0);
    }
}
