//! Panel packing and reusable pack buffers for the packed GEMM kernels.
//!
//! The packed kernels (see [`crate::simd`]) never walk the operand
//! matrices directly: the driver copies them into *panels* — `MR`- and
//! `NR`-interleaved buffers laid out exactly in the order the microkernel
//! consumes them — so the inner loop issues nothing but contiguous,
//! aligned streams. Packing is O(m·k + k·n) against O(m·k·n) arithmetic,
//! so it amortizes for everything but the smallest products (which stay on
//! the scalar kernels, see `gemm.rs`).
//!
//! Buffers come from a small process-global free list instead of fresh
//! allocations: the thread pool spawns scoped workers per dispatch, so
//! thread-locals would die with them, but the free list survives — after
//! the first few calls the packed path's steady-state heap traffic is
//! zero. `bench_report --quick` asserts that budget under `prof-alloc`.

use crate::Matrix;
use std::sync::Mutex;

/// Maximum number of idle buffers retained on the free list. Enough for
/// every worker of a wide pool to hold an A-panel plus the shared B-panel,
/// without hoarding unbounded memory after a burst of large products.
const POOL_CAP: usize = 32;

static POOL: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());

/// A zero-filled `f32` buffer checked out of the free list; returns there
/// on drop. Capacity is retained across uses, so repeated GEMMs of the
/// same shapes reach a steady state with no heap traffic at all.
pub(crate) struct PoolBuf {
    buf: Vec<f32>,
}

impl PoolBuf {
    /// Checks a buffer of `len` zeroed elements out of the pool.
    pub(crate) fn take(len: usize) -> Self {
        let mut buf = POOL
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        Self { buf }
    }

    pub(crate) fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.buf
    }

    pub(crate) fn as_slice(&self) -> &[f32] {
        &self.buf
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < POOL_CAP {
            pool.push(std::mem::take(&mut self.buf));
        }
    }
}

/// Which operand traversal a product layout needs (see `gemm.rs`): the
/// packed driver is layout-agnostic once packing has normalized both
/// operands, so the layout only decides *how* panels are gathered.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Layout {
    /// `A·B`: `a` is `m×k` row-major, `b` is `k×n` row-major.
    Nn,
    /// `A·Bᵀ`: `a` is `m×k`, `b` is `n×k` (`b`'s *rows* are key vectors).
    Nt,
    /// `Aᵀ·B`: `a` is `k×m` (output row `i` is column `i` of `a`), `b` is
    /// `k×n`.
    Tn,
}

/// Packs the `nr`-wide output-column strip starting at `j0` of the right
/// operand into `bp`, k-major and `nr`-interleaved: `bp[k*nr + jj]` is the
/// element multiplying into output column `j0 + jj` at depth `k`. Columns
/// past the matrix edge pack as zeros (padding lanes never reach the
/// output, so they only need to be finite).
pub(crate) fn pack_b_strip(layout: Layout, b: &Matrix, j0: usize, nr: usize, bp: &mut [f32]) {
    let k_dim = match layout {
        Layout::Nn | Layout::Tn => b.rows(),
        Layout::Nt => b.cols(),
    };
    let n_out = match layout {
        Layout::Nn | Layout::Tn => b.cols(),
        Layout::Nt => b.rows(),
    };
    debug_assert!(bp.len() >= k_dim * nr);
    let width = nr.min(n_out - j0);
    match layout {
        Layout::Nn | Layout::Tn => {
            // b[k, j0 + jj]: each depth step is a contiguous row segment.
            for k in 0..k_dim {
                let src = &b.row(k)[j0..j0 + width];
                let dst = &mut bp[k * nr..k * nr + nr];
                dst[..width].copy_from_slice(src);
                dst[width..].fill(0.0);
            }
        }
        Layout::Nt => {
            // b[j0 + jj, k]: stream each key row once, scattering at
            // stride `nr` — the strip stays cache-resident while the row
            // read is perfectly sequential.
            if width < nr {
                bp[..k_dim * nr].fill(0.0);
            }
            for jj in 0..width {
                let src = b.row(j0 + jj);
                for (k, &x) in src.iter().enumerate() {
                    bp[k * nr + jj] = x;
                }
            }
        }
    }
}

/// Packs the `rows`-row panel starting at output row `i0` of the left
/// operand into `ap`, as consecutive `mr`-row strips, each k-major and
/// `mr`-interleaved: strip `s` occupies `ap[s*mr*k_dim..]` with
/// `ap[strip][k*mr + ii]` the element of output row `i0 + s*mr + ii` at
/// depth `k`. Rows past `rows` pack as zeros.
pub(crate) fn pack_a_panel(
    layout: Layout,
    a: &Matrix,
    i0: usize,
    rows: usize,
    mr: usize,
    ap: &mut [f32],
) {
    let k_dim = match layout {
        Layout::Nn | Layout::Nt => a.cols(),
        Layout::Tn => a.rows(),
    };
    let strips = rows.div_ceil(mr);
    debug_assert!(ap.len() >= strips * mr * k_dim);
    for s in 0..strips {
        let strip = &mut ap[s * mr * k_dim..(s + 1) * mr * k_dim];
        let height = mr.min(rows - s * mr);
        match layout {
            Layout::Nn | Layout::Nt => {
                if height < mr {
                    strip.fill(0.0);
                }
                for ii in 0..height {
                    let src = a.row(i0 + s * mr + ii);
                    for (k, &x) in src.iter().enumerate() {
                        strip[k * mr + ii] = x;
                    }
                }
            }
            Layout::Tn => {
                // Output row `i` is column `i` of `a`: gather the strided
                // column reads once here so the microkernel never strides.
                for k in 0..k_dim {
                    let src = a.row(k);
                    let dst = &mut strip[k * mr..(k + 1) * mr];
                    for ii in 0..mr {
                        dst[ii] = if ii < height {
                            src[i0 + s * mr + ii]
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_capacity() {
        let first = {
            let mut b = PoolBuf::take(1024);
            b.as_mut_slice()[0] = 3.0;
            b.as_slice().as_ptr() as usize
        };
        // The buffer went back to the pool; the next same-size checkout
        // reuses it (same backing allocation) and is zeroed again.
        let b = PoolBuf::take(1024);
        assert_eq!(b.as_slice().as_ptr() as usize, first);
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn pack_b_nn_layout_and_padding() {
        let b = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as f32);
        let nr = 4;
        let mut bp = vec![f32::NAN; b.rows() * nr];
        pack_b_strip(Layout::Nn, &b, 4, nr, &mut bp);
        // One valid column (j=4), three zero padding lanes.
        for k in 0..3 {
            assert_eq!(bp[k * nr], (k * 10 + 4) as f32);
            assert_eq!(&bp[k * nr + 1..k * nr + 4], &[0.0, 0.0, 0.0]);
        }
    }

    #[test]
    fn pack_b_nt_matches_transposed_nn() {
        let b = Matrix::from_fn(6, 3, |r, c| (r * 10 + c) as f32);
        let bt = b.transpose();
        let nr = 4;
        let mut via_nt = vec![f32::NAN; b.cols() * nr];
        let mut via_nn = vec![f32::NAN; bt.rows() * nr];
        pack_b_strip(Layout::Nt, &b, 2, nr, &mut via_nt);
        pack_b_strip(Layout::Nn, &bt, 2, nr, &mut via_nn);
        assert_eq!(via_nt, via_nn);
    }

    #[test]
    fn pack_a_tn_matches_transposed_nn() {
        let a = Matrix::from_fn(5, 7, |r, c| (r * 10 + c) as f32);
        let at = a.transpose();
        let mr = 4;
        let rows = 6usize;
        let mut via_tn = vec![f32::NAN; rows.div_ceil(mr) * mr * a.rows()];
        let mut via_nn = vec![f32::NAN; rows.div_ceil(mr) * mr * at.cols()];
        pack_a_panel(Layout::Tn, &a, 1, rows, mr, &mut via_tn);
        pack_a_panel(Layout::Nn, &at, 1, rows, mr, &mut via_nn);
        assert_eq!(via_tn, via_nn);
    }
}
