//! Neural-network primitives: softmax, layer normalization, activations.
//!
//! These are the non-GEMM operations of a Transformer encoder (paper §2.1):
//! the row-wise softmax of Eq. 2, the residual + layer-norm that follows
//! multi-head attention and the FFN, and the GELU used between the FFN's two
//! fully-connected layers.

use crate::Matrix;

/// Row-wise numerically-stable softmax (Eq. 2 of the paper).
///
/// Each row is shifted by its maximum before exponentiation so that large
/// attention scores cannot overflow.
///
/// # Example
///
/// ```
/// # use dota_tensor::{Matrix, ops};
/// let s = Matrix::from_rows(&[&[0.0, 0.0]]).unwrap();
/// let a = ops::softmax_rows(&s);
/// assert!((a[(0, 0)] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_rows(scores: &Matrix) -> Matrix {
    let mut out = scores.clone();
    for r in 0..out.rows() {
        softmax_slice(out.row_mut(r));
    }
    out
}

/// Numerically-stable softmax over a single slice, in place.
pub fn softmax_slice(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        // All entries are -inf (fully masked row): define the output as
        // uniform zero rather than NaN so downstream aggregation is a no-op.
        row.fill(0.0);
        return;
    }
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

/// Row-wise softmax with a binary mask: positions where `mask` is `false`
/// receive zero probability, and the remaining probabilities renormalize.
///
/// This reproduces the paper's observation (§3.2) that omitting weak
/// attention scores *scales up* the surviving attention weights because the
/// softmax denominator shrinks.
///
/// # Panics
///
/// Panics if `mask` dimensions disagree with `scores`.
pub fn masked_softmax_rows(scores: &Matrix, mask: &[Vec<bool>]) -> Matrix {
    assert_eq!(mask.len(), scores.rows(), "mask row count mismatch");
    let mut out = scores.clone();
    for r in 0..out.rows() {
        let mrow = &mask[r];
        assert_eq!(mrow.len(), scores.cols(), "mask col count mismatch");
        let row = out.row_mut(r);
        for (x, &keep) in row.iter_mut().zip(mrow) {
            if !keep {
                *x = f32::NEG_INFINITY;
            }
        }
        softmax_slice(row);
    }
    out
}

/// Layer normalization over each row with learnable `gamma` and `beta`.
///
/// # Panics
///
/// Panics if `gamma` or `beta` lengths differ from `x.cols()`.
pub fn layer_norm(x: &Matrix, gamma: &[f32], beta: &[f32], eps: f32) -> Matrix {
    assert_eq!(gamma.len(), x.cols(), "gamma length mismatch");
    assert_eq!(beta.len(), x.cols(), "beta length mismatch");
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let n = row.len() as f32;
        let mean: f32 = row.iter().sum::<f32>() / n;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv_std = 1.0 / (var + eps).sqrt();
        for (i, v) in row.iter_mut().enumerate() {
            *v = (*v - mean) * inv_std * gamma[i] + beta[i];
        }
    }
    out
}

/// GELU activation (tanh approximation), element-wise.
pub fn gelu(x: &Matrix) -> Matrix {
    x.map(gelu_scalar)
}

/// GELU on a single value (tanh approximation).
pub fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// ReLU activation, element-wise.
pub fn relu(x: &Matrix) -> Matrix {
    x.map(|v| v.max(0.0))
}

/// Adds a bias row vector to every row of `x`.
///
/// # Panics
///
/// Panics if `bias.len() != x.cols()`.
pub fn add_bias(x: &Matrix, bias: &[f32]) -> Matrix {
    assert_eq!(bias.len(), x.cols(), "bias length mismatch");
    let mut out = x.clone();
    for r in 0..out.rows() {
        for (v, b) in out.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
    out
}

/// Mean squared error between two equally-shaped matrices
/// (`L_MSE` of Eq. 5, without the batch normalizer).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape(), "mse shape mismatch");
    let n = a.len().max(1) as f32;
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        / n
}

/// Row-wise argmax: the index of the largest element of each row.
pub fn argmax_rows(x: &Matrix) -> Vec<usize> {
    x.rows_iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let s = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]).unwrap();
        let a = softmax_rows(&s);
        for r in 0..2 {
            let sum: f32 = a.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone: larger score -> larger probability.
        assert!(a[(0, 2)] > a[(0, 1)] && a[(0, 1)] > a[(0, 0)]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let s = Matrix::from_rows(&[&[1e30, 1e30]]).unwrap();
        let a = softmax_rows(&s);
        assert!((a[(0, 0)] - 0.5).abs() < 1e-6);
        assert!(a.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn masked_softmax_zeros_masked_positions() {
        let s = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let mask = vec![vec![true, false, true]];
        let a = masked_softmax_rows(&s, &mask);
        assert_eq!(a[(0, 1)], 0.0);
        let sum: f32 = a.row(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // Surviving weights scale up relative to unmasked softmax (§3.2).
        let dense = softmax_rows(&s);
        assert!(a[(0, 2)] > dense[(0, 2)]);
    }

    #[test]
    fn masked_softmax_fully_masked_row_is_zero() {
        let s = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let mask = vec![vec![false, false]];
        let a = masked_softmax_rows(&s, &mask);
        assert_eq!(a.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap();
        let gamma = vec![1.0; 4];
        let beta = vec![0.0; 4];
        let y = layer_norm(&x, &gamma, &beta, 1e-5);
        let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        let var: f32 = y.row(0).iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_gamma_beta_applied() {
        let x = Matrix::from_rows(&[&[1.0, -1.0]]).unwrap();
        let y = layer_norm(&x, &[2.0, 2.0], &[10.0, 10.0], 1e-5);
        let mean: f32 = y.row(0).iter().sum::<f32>() / 2.0;
        assert!((mean - 10.0).abs() < 1e-4);
    }

    #[test]
    fn gelu_known_points() {
        assert!(gelu_scalar(0.0).abs() < 1e-7);
        assert!((gelu_scalar(1.0) - 0.841_192).abs() < 1e-3);
        assert!(gelu_scalar(-10.0).abs() < 1e-3);
        let m = Matrix::from_rows(&[&[0.0, 1.0]]).unwrap();
        let g = gelu(&m);
        assert!((g[(0, 1)] - gelu_scalar(1.0)).abs() < 1e-7);
    }

    #[test]
    fn relu_clamps_negatives() {
        let m = Matrix::from_rows(&[&[-1.0, 2.0]]).unwrap();
        assert_eq!(relu(&m).row(0), &[0.0, 2.0]);
    }

    #[test]
    fn add_bias_broadcasts() {
        let x = Matrix::zeros(3, 2);
        let y = add_bias(&x, &[1.0, 2.0]);
        for r in 0..3 {
            assert_eq!(y.row(r), &[1.0, 2.0]);
        }
    }

    #[test]
    fn mse_basics() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 2.0]]).unwrap();
        assert!((mse(&a, &b) - 2.0).abs() < 1e-6);
        assert_eq!(mse(&a, &a), 0.0);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let m = Matrix::from_rows(&[&[0.1, 0.9], &[5.0, -1.0]]).unwrap();
        assert_eq!(argmax_rows(&m), vec![1, 0]);
    }
}

/// Sparse attention output: for each query row `i`, computes softmax over
/// only the selected key indices and aggregates the corresponding value
/// rows — without materializing the full `n x n` score matrix. This is the
/// numeric twin of the accelerator's detected-graph computation (`O(kept)`
/// instead of `O(n²)` work).
///
/// `selected[i]` lists the key indices query `i` attends to; an empty row
/// yields a zero output row (matching [`masked_softmax_rows`] on a fully
/// masked row).
///
/// # Panics
///
/// Panics if shapes disagree, `selected.len() != q.rows()`, or an index is
/// out of bounds.
pub fn sparse_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    selected: &[Vec<u32>],
    scale: f32,
) -> Matrix {
    assert_eq!(q.cols(), k.cols(), "q/k width mismatch");
    assert_eq!(k.rows(), v.rows(), "k/v length mismatch");
    assert_eq!(selected.len(), q.rows(), "one selection per query");
    let mut out = Matrix::zeros(q.rows(), v.cols());
    let mut weights: Vec<f32> = Vec::new();
    for (i, sel) in selected.iter().enumerate() {
        if sel.is_empty() {
            continue;
        }
        let qrow = q.row(i);
        weights.clear();
        weights.extend(sel.iter().map(|&j| {
            assert!((j as usize) < k.rows(), "key index {j} out of bounds");
            Matrix::dot(qrow, k.row(j as usize)) * scale
        }));
        softmax_slice(&mut weights);
        let orow = out.row_mut(i);
        for (&j, &w) in sel.iter().zip(weights.iter()) {
            for (o, &vv) in orow.iter_mut().zip(v.row(j as usize)) {
                *o += w * vv;
            }
        }
    }
    out
}

#[cfg(test)]
mod sparse_tests {
    use super::*;
    use crate::rng::SeededRng;
    use crate::topk;

    #[test]
    fn sparse_attention_matches_masked_dense() {
        let mut rng = SeededRng::new(5);
        let n = 12;
        let hd = 8;
        let q = rng.normal_matrix(n, hd, 1.0);
        let k = rng.normal_matrix(n, hd, 1.0);
        let v = rng.normal_matrix(n, hd, 1.0);
        let scale = 1.0 / (hd as f32).sqrt();
        let scores = q.matmul_nt(&k).unwrap().scale(scale);
        let sel_idx = topk::top_k_rows(&scores, 3);
        let mask = topk::indices_to_mask(&sel_idx, n);
        let dense = masked_softmax_rows(&scores, &mask).matmul(&v).unwrap();
        let selected: Vec<Vec<u32>> = sel_idx
            .iter()
            .map(|r| r.iter().map(|&i| i as u32).collect())
            .collect();
        let sparse = sparse_attention(&q, &k, &v, &selected, scale);
        assert!(sparse.approx_eq(&dense, 1e-4), "sparse/dense mismatch");
    }

    #[test]
    fn empty_selection_yields_zero_row() {
        let q = Matrix::filled(2, 4, 1.0);
        let k = Matrix::filled(3, 4, 1.0);
        let v = Matrix::filled(3, 4, 2.0);
        let sel = vec![vec![], vec![0u32]];
        let out = sparse_attention(&q, &k, &v, &sel, 1.0);
        assert_eq!(out.row(0), &[0.0; 4]);
        assert_eq!(out.row(1), &[2.0; 4]);
    }

    #[test]
    fn full_selection_matches_dense_softmax() {
        let mut rng = SeededRng::new(6);
        let q = rng.normal_matrix(6, 4, 1.0);
        let k = rng.normal_matrix(6, 4, 1.0);
        let v = rng.normal_matrix(6, 4, 1.0);
        let sel: Vec<Vec<u32>> = (0..6).map(|_| (0..6u32).collect()).collect();
        let sparse = sparse_attention(&q, &k, &v, &sel, 0.5);
        let dense = softmax_rows(&q.matmul_nt(&k).unwrap().scale(0.5))
            .matmul(&v)
            .unwrap();
        assert!(sparse.approx_eq(&dense, 1e-4));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn sparse_attention_checks_indices() {
        let q = Matrix::zeros(1, 2);
        let k = Matrix::zeros(2, 2);
        let v = Matrix::zeros(2, 2);
        let _ = sparse_attention(&q, &k, &v, &[vec![9]], 1.0);
    }
}

#[cfg(test)]
mod sparse_properties {
    use super::*;
    use crate::rng::SeededRng;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The sparse attention kernel agrees with masked-dense attention
        /// for arbitrary selections.
        #[test]
        fn sparse_equals_masked_dense(
            seed in 0u64..1000,
            n in 2usize..10,
            hd in 1usize..6,
            k in 1usize..6,
        ) {
            let k = k.min(n);
            let mut rng = SeededRng::new(seed);
            let q = rng.normal_matrix(n, hd, 1.0);
            let kk = rng.normal_matrix(n, hd, 1.0);
            let v = rng.normal_matrix(n, hd, 1.0);
            let sel: Vec<Vec<u32>> = (0..n)
                .map(|_| {
                    rng.sample_indices(n, k)
                        .into_iter()
                        .map(|i| i as u32)
                        .collect()
                })
                .collect();
            let mask: Vec<Vec<bool>> = sel
                .iter()
                .map(|row| {
                    let mut m = vec![false; n];
                    for &j in row {
                        m[j as usize] = true;
                    }
                    m
                })
                .collect();
            let scale = 1.0 / (hd as f32).sqrt();
            let scores = q.matmul_nt(&kk).unwrap().scale(scale);
            let dense = masked_softmax_rows(&scores, &mask).matmul(&v).unwrap();
            let sparse = sparse_attention(&q, &kk, &v, &sel, scale);
            prop_assert!(sparse.approx_eq(&dense, 1e-3));
        }
    }
}
