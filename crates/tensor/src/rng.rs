//! Seeded random-number helpers and random projection matrices.
//!
//! The detector (paper §3.1, Eq. 4) relies on an Achlioptas-style *sparse
//! random projection* `P ∈ sqrt(3/k)·{-1, 0, +1}^{d×k}` to reduce the input
//! feature dimension before the low-rank transformations. ELSA's baseline
//! uses dense *sign random projections*. Both are constructed here so that
//! every crate draws them from the same seeded source and experiments stay
//! reproducible.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG wrapper used throughout the workspace.
///
/// All experiments in this repository are seeded so that accuracy tables and
/// simulator traces are exactly reproducible run-to-run.
///
/// # Example
///
/// ```
/// use dota_tensor::rng::SeededRng;
///
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// A uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// A standard-normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.uniform().max(1e-12);
        let u2: f32 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// A `rows x cols` matrix of i.i.d. `N(0, std^2)` samples.
    pub fn normal_matrix(&mut self, rows: usize, cols: usize, std: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.normal() * std)
    }

    /// A `rows x cols` matrix of uniform samples in `[lo, hi)`.
    pub fn uniform_matrix(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.uniform_range(lo, hi))
    }

    /// Xavier/Glorot-initialized weight matrix for a `fan_in -> fan_out`
    /// linear layer.
    pub fn xavier(&mut self, fan_in: usize, fan_out: usize) -> Matrix {
        let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
        self.normal_matrix(fan_in, fan_out, std)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (reservoir-free, via shuffle
    /// of a prefix).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Achlioptas sparse random projection `P ∈ sqrt(3/k)·{-1,0,+1}^{d×k}`
    /// (paper Eq. 4, citing Achlioptas 2001).
    ///
    /// Entries are `+sqrt(3/k)` with probability 1/6, `-sqrt(3/k)` with
    /// probability 1/6 and `0` with probability 2/3, which preserves
    /// pairwise distances in expectation while being two-thirds zeros — the
    /// property the paper exploits for a cheap detector.
    pub fn achlioptas_projection(&mut self, d: usize, k: usize) -> Matrix {
        let scale = (3.0 / k.max(1) as f32).sqrt();
        Matrix::from_fn(d, k, |_, _| {
            let u = self.uniform();
            if u < 1.0 / 6.0 {
                scale
            } else if u < 2.0 / 6.0 {
                -scale
            } else {
                0.0
            }
        })
    }

    /// Dense sign random projection `R ∈ {-1,+1}^{d×k}` scaled by
    /// `1/sqrt(k)`, as used by the ELSA baseline (paper §6.2).
    pub fn sign_projection(&mut self, d: usize, k: usize) -> Matrix {
        let scale = 1.0 / (k.max(1) as f32).sqrt();
        Matrix::from_fn(
            d,
            k,
            |_, _| {
                if self.uniform() < 0.5 {
                    scale
                } else {
                    -scale
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_var() {
        let mut rng = SeededRng::new(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn achlioptas_entry_distribution() {
        let mut rng = SeededRng::new(3);
        let p = rng.achlioptas_projection(100, 50);
        let scale = (3.0_f32 / 50.0).sqrt();
        let zeros = p.iter().filter(|&&x| x == 0.0).count();
        let pos = p.iter().filter(|&&x| (x - scale).abs() < 1e-6).count();
        let neg = p.iter().filter(|&&x| (x + scale).abs() < 1e-6).count();
        assert_eq!(zeros + pos + neg, p.len());
        let frac_zero = zeros as f32 / p.len() as f32;
        assert!(
            (frac_zero - 2.0 / 3.0).abs() < 0.05,
            "zero frac {frac_zero}"
        );
    }

    #[test]
    fn achlioptas_preserves_norms_in_expectation() {
        // JL-style property: ||x^T P||^2 ~ ||x||^2 on average.
        let mut rng = SeededRng::new(4);
        let d = 64;
        let k = 32;
        let mut ratio_sum = 0.0;
        let trials = 50;
        for _ in 0..trials {
            let p = rng.achlioptas_projection(d, k);
            let x = rng.normal_matrix(1, d, 1.0);
            let proj = x.matmul(&p).unwrap();
            let r = proj.frobenius_norm().powi(2) / x.frobenius_norm().powi(2);
            ratio_sum += r;
        }
        let avg = ratio_sum / trials as f32;
        assert!((avg - 1.0).abs() < 0.25, "norm ratio {avg}");
    }

    #[test]
    fn sign_projection_entries() {
        let mut rng = SeededRng::new(5);
        let p = rng.sign_projection(10, 16);
        let scale = 0.25;
        assert!(p.iter().all(|&x| (x.abs() - scale).abs() < 1e-6));
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SeededRng::new(6);
        let idx = rng.sample_indices(100, 30);
        assert_eq!(idx.len(), 30);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SeededRng::new(8);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_more_than_n_panics() {
        let mut rng = SeededRng::new(9);
        let _ = rng.sample_indices(3, 5);
    }
}
