//! Dense matrix substrate for the DOTA reproduction.
//!
//! Every other crate in this workspace builds on the types in this crate:
//! the Transformer forward pass (`dota-transformer`), the attention
//! detector (`dota-detector`), the autograd engine (`dota-autograd`) and
//! the accelerator simulator (`dota-accel`) all manipulate row-major
//! [`Matrix`] values.
//!
//! The crate deliberately implements only what the paper needs — `f32`
//! matrices with GEMM, row-wise softmax, layer normalization, GELU, top-k
//! selection and random projections — rather than a general tensor library.
//!
//! # Example
//!
//! ```
//! use dota_tensor::{Matrix, ops};
//!
//! # fn main() -> Result<(), dota_tensor::ShapeError> {
//! let q = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]])?;
//! let k = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]])?;
//! let scores = q.matmul_nt(&k)?; // Q * K^T
//! let attn = ops::softmax_rows(&scores);
//! assert_eq!(attn.rows(), 2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
// Indexed loops are the clearest formulation of the matrix kernels here.
#![allow(clippy::needless_range_loop)]

mod error;
mod gemm;
mod matrix;
mod pack;

pub mod flops;
pub mod ops;
pub mod reference;
pub mod rng;
pub mod simd;
pub mod topk;

pub use error::ShapeError;
pub use matrix::Matrix;
