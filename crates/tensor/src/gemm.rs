//! General matrix-matrix and matrix-vector products.
//!
//! The GEMM kernels here are cache-blocked but otherwise straightforward:
//! the goal of this workspace is simulator fidelity, not peak FLOPs. Three
//! layouts are provided because self-attention needs all of them:
//! `A*B` (projections and `A*V`), `A*B^T` (`Q*K^T`), and `A^T*B` (gradient
//! computations in `dota-autograd`).

use crate::{Matrix, ShapeError};

const BLOCK: usize = 32;

impl Matrix {
    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != other.rows()`.
    ///
    /// # Example
    ///
    /// ```
    /// # use dota_tensor::Matrix;
    /// # fn main() -> Result<(), dota_tensor::ShapeError> {
    /// let a = Matrix::identity(3);
    /// let b = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
    /// assert_eq!(a.matmul(&b)?, b);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols() != other.rows() {
            return Err(ShapeError::new("matmul", self.shape(), other.shape()));
        }
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(m, n);
        // i-k-j loop order with blocking keeps the inner loop streaming over
        // contiguous rows of `other` and `out`.
        for ib in (0..m).step_by(BLOCK) {
            for kb in (0..k).step_by(BLOCK) {
                for i in ib..(ib + BLOCK).min(m) {
                    let a_row = self.row(i);
                    for kk in kb..(kb + BLOCK).min(k) {
                        let a = a_row[kk];
                        if a == 0.0 {
                            continue;
                        }
                        let b_row = other.row(kk);
                        let o_row = out.row_mut(i);
                        for j in 0..n {
                            o_row[j] += a * b_row[j];
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Matrix product with transposed right operand: `self * other^T`.
    ///
    /// This is the `Q * K^T` kernel: both operands are traversed row-wise,
    /// so no explicit transpose is materialized.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols() != other.cols() {
            return Err(ShapeError::new("matmul_nt", self.shape(), other.shape()));
        }
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let o_row = out.row_mut(i);
            for j in 0..n {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a_row[kk] * b_row[kk];
                }
                o_row[j] = acc;
            }
        }
        Ok(out)
    }

    /// Matrix product with transposed left operand: `self^T * other`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.rows() != other.rows() {
            return Err(ShapeError::new("matmul_tn", self.shape(), other.shape()));
        }
        let (m, k, n) = (self.cols(), self.rows(), other.cols());
        let mut out = Matrix::zeros(m, n);
        for kk in 0..k {
            let a_row = self.row(kk);
            let b_row = other.row(kk);
            for i in 0..m {
                let a = a_row[i];
                if a == 0.0 {
                    continue;
                }
                let o_row = out.row_mut(i);
                for j in 0..n {
                    o_row[j] += a * b_row[j];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != v.len()`.
    pub fn matvec(&self, v: &[f32]) -> Result<Vec<f32>, ShapeError> {
        if self.cols() != v.len() {
            return Err(ShapeError::new("matvec", self.shape(), (v.len(), 1)));
        }
        Ok(self
            .rows_iter()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Dot product of two equal-length slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot product of unequal lengths");
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = SeededRng::new(1);
        let a = rng.normal_matrix(7, 7, 1.0);
        let i = Matrix::identity(7);
        assert!(a.matmul(&i).unwrap().approx_eq(&a, 1e-6));
        assert!(i.matmul(&a).unwrap().approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_matches_naive_on_odd_sizes() {
        let mut rng = SeededRng::new(2);
        // Sizes chosen to straddle the blocking factor.
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 3), (33, 40, 17), (64, 31, 65)] {
            let a = rng.normal_matrix(m, k, 1.0);
            let b = rng.normal_matrix(k, n, 1.0);
            let fast = a.matmul(&b).unwrap();
            let slow = naive_matmul(&a, &b);
            assert!(fast.approx_eq(&slow, 1e-3), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = SeededRng::new(3);
        let q = rng.normal_matrix(9, 6, 1.0);
        let k = rng.normal_matrix(11, 6, 1.0);
        let fast = q.matmul_nt(&k).unwrap();
        let slow = q.matmul(&k.transpose()).unwrap();
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = SeededRng::new(4);
        let a = rng.normal_matrix(8, 5, 1.0);
        let b = rng.normal_matrix(8, 7, 1.0);
        let fast = a.matmul_tn(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn shape_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul_nt(&Matrix::zeros(4, 4)).is_err());
        assert!(a.matmul_tn(&Matrix::zeros(3, 3)).is_err());
        assert!(a.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = SeededRng::new(5);
        let a = rng.normal_matrix(6, 4, 1.0);
        let v = vec![1.0, -2.0, 0.5, 3.0];
        let mv = a.matvec(&v).unwrap();
        let col = Matrix::from_vec(4, 1, v).unwrap();
        let mm = a.matmul(&col).unwrap();
        for (i, &x) in mv.iter().enumerate() {
            assert!((x - mm[(i, 0)]).abs() < 1e-5);
        }
    }

    #[test]
    fn dot_product() {
        assert_eq!(Matrix::dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
