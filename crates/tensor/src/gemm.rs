//! General matrix-matrix and matrix-vector products.
//!
//! Three GEMM layouts are provided because self-attention needs all of
//! them: `A*B` (projections and `A*V`), `A*B^T` (`Q*K^T`), and `A^T*B`
//! (gradient computations in `dota-autograd`).
//!
//! Each layout dispatches over the kernel families in [`crate::simd`]:
//! products big enough to amortize panel packing run the packed SIMD
//! microkernel driver ([`crate::simd::packed_gemm`]) when the selected
//! family has lanes on this host; everything else — small products, the
//! `scalar` family, hosts without SIMD — runs the legacy blocked kernels
//! below. The legacy path builds each product from one row-range kernel,
//! cache-blocked over `i`/`k` with a 4-wide unrolled inner microkernel;
//! with the `parallel` feature, products past [`PAR_CUTOFF_FLOPS`] run
//! that kernel over per-worker row blocks via
//! `dota_parallel::par_partition_mut`.
//!
//! Both paths keep the same numerics contract: every output element is one
//! ascending-`k` accumulation chain, so for the `scalar` and `simd`
//! families results are bitwise identical to the naive reference — across
//! paths, across `DOTA_THREADS`, and across the serial/parallel feature
//! builds. Only the opt-in `fma` family shifts low bits (fused rounding).
//!
//! The `*_into` variants write into a caller-owned output matrix; repeated
//! products of the same shape then run with zero steady-state heap traffic
//! (pack buffers are pooled, see [`crate::pack`]).

use crate::pack::Layout;
use crate::simd::{self, KernelFamily};
use crate::{Matrix, ShapeError};

const BLOCK: usize = 32;

/// Products smaller than this many multiply-adds (`m·k·n`) stay serial even
/// when the `parallel` feature is enabled: below it, thread dispatch costs
/// more than the arithmetic it distributes.
#[cfg(feature = "parallel")]
pub const PAR_CUTOFF_FLOPS: usize = 64 * 64 * 64;

/// Runs `kernel` over the rows of `out` — as one call on the serial path,
/// or on contiguous per-worker row blocks when the `parallel` feature is
/// enabled and the product performs at least [`PAR_CUTOFF_FLOPS`]
/// multiply-adds.
///
/// `kernel(first_row, span)` must fill the `span.len() / out.cols()` output
/// rows starting at `first_row`, each row independently of the others; that
/// independence is what makes the row partition bitwise-transparent.
fn row_dispatch(out: &mut Matrix, flops: usize, kernel: impl Fn(usize, &mut [f32]) + Sync) {
    if out.is_empty() {
        return;
    }
    #[cfg(feature = "parallel")]
    if flops >= PAR_CUTOFF_FLOPS {
        let cols = out.cols();
        dota_parallel::par_partition_mut(out.as_mut_slice(), cols, kernel);
        return;
    }
    #[cfg(not(feature = "parallel"))]
    let _ = flops;
    kernel(0, out.as_mut_slice());
}

/// Runs one product into the pre-zeroed `out`: the packed SIMD driver when
/// the active family has lanes and the product is worth packing, the
/// legacy blocked kernel otherwise. The split is invisible in the bits for
/// the `scalar`/`simd` families — both paths produce the reference chain —
/// so the cutoff inside [`simd::packed_kernel`] is purely a perf knob.
fn gemm_dispatch(
    layout: Layout,
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    legacy: impl Fn(usize, &mut [f32]) + Sync,
) {
    let (m, n) = out.shape();
    let k = match layout {
        Layout::Nn | Layout::Nt => a.cols(),
        Layout::Tn => a.rows(),
    };
    let flops = m * k * n;
    if let Some(micro) = simd::packed_kernel(KernelFamily::active(), flops) {
        simd::packed_gemm(layout, a, b, out, micro);
        return;
    }
    row_dispatch(out, flops, legacy);
}

/// `out += a * b` over a row, 4-wide unrolled so the optimizer sees
/// independent straight-line multiply-adds to vectorize.
#[inline]
fn axpy(out: &mut [f32], b: &[f32], a: f32) {
    let split = out.len() - out.len() % 4;
    let (o_main, o_tail) = out.split_at_mut(split);
    let (b_main, b_tail) = b.split_at(split);
    for (o, x) in o_main.chunks_exact_mut(4).zip(b_main.chunks_exact(4)) {
        o[0] += a * x[0];
        o[1] += a * x[1];
        o[2] += a * x[2];
        o[3] += a * x[3];
    }
    for (o, &x) in o_tail.iter_mut().zip(b_tail) {
        *o += a * x;
    }
}

/// Dot product continuing the accumulation chain in `acc`, 4-wide unrolled
/// **without reassociation**: every term joins one sequential chain in
/// ascending index order, so the result is bit-identical to the scalar
/// `for kk { acc += a[kk] * b[kk] }` loop. Keeping the textbook order means
/// the blocked kernels (which call this once per k-panel, threading `acc`
/// through) reproduce the unblocked kernels' results exactly.
#[inline]
fn dot_chain(mut acc: f32, a: &[f32], b: &[f32]) -> f32 {
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        acc += xa[0] * xb[0];
        acc += xa[1] * xb[1];
        acc += xa[2] * xb[2];
        acc += xa[3] * xb[3];
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += x * y;
    }
    acc
}

/// Fills output rows `[first, first + span.len()/n)` of `A·B`.
///
/// i-k-j order, blocked over `i` and `k`: the inner `axpy` streams
/// contiguous rows of `b` and the output, and each `(ib, kb)` pass reuses
/// the same 32-row panel of `b` across the row block.
fn nn_kernel(a: &Matrix, b: &Matrix, first: usize, span: &mut [f32]) {
    let k = a.cols();
    let n = b.cols();
    let rows = span.len() / n;
    for ib in (0..rows).step_by(BLOCK) {
        let ie = (ib + BLOCK).min(rows);
        for kb in (0..k).step_by(BLOCK) {
            let ke = (kb + BLOCK).min(k);
            for i in ib..ie {
                let a_row = a.row(first + i);
                let o_row = &mut span[i * n..(i + 1) * n];
                for kk in kb..ke {
                    let aval = a_row[kk];
                    if aval == 0.0 {
                        continue;
                    }
                    axpy(o_row, b.row(kk), aval);
                }
            }
        }
    }
}

/// Fills output rows `[first, first + span.len()/n)` of `A·Bᵀ`.
///
/// Blocked over `i` and `k`: each `(ib, kb)` pass touches only a 32-column
/// panel of both operands, so `b`'s panel stays cached across the block's
/// rows instead of the whole of `b` streaming through cache once per output
/// row (the behaviour of the unblocked kernel this replaces).
fn nt_kernel(a: &Matrix, b: &Matrix, first: usize, span: &mut [f32]) {
    let k = a.cols();
    let n = b.rows();
    let rows = span.len() / n;
    for ib in (0..rows).step_by(BLOCK) {
        let ie = (ib + BLOCK).min(rows);
        for kb in (0..k).step_by(BLOCK) {
            let ke = (kb + BLOCK).min(k);
            for i in ib..ie {
                let a_panel = &a.row(first + i)[kb..ke];
                let o_row = &mut span[i * n..(i + 1) * n];
                for (j, o) in o_row.iter_mut().enumerate() {
                    // `*o` carries the accumulation chain across k-panels.
                    *o = dot_chain(*o, a_panel, &b.row(j)[kb..ke]);
                }
            }
        }
    }
}

/// Fills output rows `[first, first + span.len()/n)` of `Aᵀ·B`.
///
/// Output row `i` is column `first + i` of `a`; blocking over `k` keeps the
/// strided column reads of `a` inside one 32×32 tile at a time.
fn tn_kernel(a: &Matrix, b: &Matrix, first: usize, span: &mut [f32]) {
    let k = a.rows();
    let n = b.cols();
    let rows = span.len() / n;
    for ib in (0..rows).step_by(BLOCK) {
        let ie = (ib + BLOCK).min(rows);
        for kb in (0..k).step_by(BLOCK) {
            let ke = (kb + BLOCK).min(k);
            for i in ib..ie {
                let o_row = &mut span[i * n..(i + 1) * n];
                for kk in kb..ke {
                    let aval = a[(kk, first + i)];
                    if aval == 0.0 {
                        continue;
                    }
                    axpy(o_row, b.row(kk), aval);
                }
            }
        }
    }
}

/// Checks that `out` is shaped `m×n`, zeroes it, and returns `Ok`.
fn prep_out(op: &'static str, out: &mut Matrix, m: usize, n: usize) -> Result<(), ShapeError> {
    if out.shape() != (m, n) {
        return Err(ShapeError::new(op, (m, n), out.shape()));
    }
    out.as_mut_slice().fill(0.0);
    Ok(())
}

impl Matrix {
    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != other.rows()`.
    ///
    /// # Example
    ///
    /// ```
    /// # use dota_tensor::Matrix;
    /// # fn main() -> Result<(), dota_tensor::ShapeError> {
    /// let a = Matrix::identity(3);
    /// let b = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
    /// assert_eq!(a.matmul(&b)?, b);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::zeros(self.rows(), other.cols());
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul`] writing into a caller-owned output (overwritten,
    /// must already be shaped `self.rows() × other.cols()`). Reusing one
    /// output across repeated same-shape products keeps the hot path free
    /// of heap traffic — pack buffers are pooled too, so the steady state
    /// allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != other.rows()` or
    /// `out` has the wrong shape.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), ShapeError> {
        if self.cols() != other.rows() {
            return Err(ShapeError::new("matmul", self.shape(), other.shape()));
        }
        prep_out("matmul_into", out, self.rows(), other.cols())?;
        let _prof = dota_prof::span("gemm.matmul");
        gemm_dispatch(Layout::Nn, self, other, out, |first, span| {
            nn_kernel(self, other, first, span);
        });
        Ok(())
    }

    /// Matrix product with transposed right operand: `self * other^T`.
    ///
    /// This is the `Q * K^T` kernel: both operands are traversed row-wise,
    /// so no explicit transpose is materialized.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::zeros(self.rows(), other.rows());
        self.matmul_nt_into(other, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul_nt`] writing into a caller-owned output
    /// (overwritten, must be shaped `self.rows() × other.rows()`).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != other.cols()` or
    /// `out` has the wrong shape.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), ShapeError> {
        if self.cols() != other.cols() {
            return Err(ShapeError::new("matmul_nt", self.shape(), other.shape()));
        }
        prep_out("matmul_nt_into", out, self.rows(), other.rows())?;
        let _prof = dota_prof::span("gemm.matmul_nt");
        gemm_dispatch(Layout::Nt, self, other, out, |first, span| {
            nt_kernel(self, other, first, span);
        });
        Ok(())
    }

    /// Matrix product with transposed left operand: `self^T * other`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::zeros(self.cols(), other.cols());
        self.matmul_tn_into(other, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul_tn`] writing into a caller-owned output
    /// (overwritten, must be shaped `self.cols() × other.cols()`).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.rows() != other.rows()` or
    /// `out` has the wrong shape.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), ShapeError> {
        if self.rows() != other.rows() {
            return Err(ShapeError::new("matmul_tn", self.shape(), other.shape()));
        }
        prep_out("matmul_tn_into", out, self.cols(), other.cols())?;
        let _prof = dota_prof::span("gemm.matmul_tn");
        gemm_dispatch(Layout::Tn, self, other, out, |first, span| {
            tn_kernel(self, other, first, span);
        });
        Ok(())
    }

    /// Matrix-vector product `self * v`.
    ///
    /// The `scalar` and `simd` families use the exact sequential chain;
    /// the opt-in `fma` family uses a reassociated multi-chain SIMD dot
    /// (same documented numerics shift as its GEMM kernels).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != v.len()`.
    pub fn matvec(&self, v: &[f32]) -> Result<Vec<f32>, ShapeError> {
        if self.cols() != v.len() {
            return Err(ShapeError::new("matvec", self.shape(), (v.len(), 1)));
        }
        if KernelFamily::active() == KernelFamily::Fma {
            if let Some(first) = self
                .rows_iter()
                .next()
                .and_then(|row| simd::fma_dot(row, v))
            {
                let mut out = Vec::with_capacity(self.rows());
                out.push(first);
                for row in self.rows_iter().skip(1) {
                    out.push(simd::fma_dot(row, v).expect("fma support checked above"));
                }
                return Ok(out);
            }
        }
        Ok(self.rows_iter().map(|row| dot_chain(0.0, row, v)).collect())
    }

    /// Dot product of two equal-length slices.
    ///
    /// Always the exact sequential chain, regardless of kernel family: the
    /// sparse-attention scorer and the detector compare these values
    /// against recorded thresholds, so they must not drift.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot product of unequal lengths");
        dot_chain(0.0, a, b)
    }
}

#[cfg(test)]
mod tests {
    use crate::reference;
    use crate::rng::SeededRng;
    use crate::simd::with_gemm_env;
    use crate::Matrix;

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = SeededRng::new(1);
        let a = rng.normal_matrix(7, 7, 1.0);
        let i = Matrix::identity(7);
        assert!(a.matmul(&i).unwrap().approx_eq(&a, 1e-6));
        assert!(i.matmul(&a).unwrap().approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_matches_reference_on_odd_sizes() {
        let mut rng = SeededRng::new(2);
        // Sizes chosen to straddle the blocking factor and the unroll width.
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 3), (33, 40, 17), (64, 31, 65)] {
            let a = rng.normal_matrix(m, k, 1.0);
            let b = rng.normal_matrix(k, n, 1.0);
            let fast = a.matmul(&b).unwrap();
            let slow = reference::matmul(&a, &b);
            assert!(fast.approx_eq(&slow, 1e-3), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_nt_matches_reference() {
        let mut rng = SeededRng::new(3);
        for &(m, k, n) in &[(1, 6, 1), (9, 6, 11), (40, 33, 37), (65, 70, 64)] {
            let q = rng.normal_matrix(m, k, 1.0);
            let kmat = rng.normal_matrix(n, k, 1.0);
            let fast = q.matmul_nt(&kmat).unwrap();
            let slow = reference::matmul_nt(&q, &kmat);
            assert!(fast.approx_eq(&slow, 1e-3), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = SeededRng::new(3);
        let q = rng.normal_matrix(9, 6, 1.0);
        let k = rng.normal_matrix(11, 6, 1.0);
        let fast = q.matmul_nt(&k).unwrap();
        let slow = q.matmul(&k.transpose()).unwrap();
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn matmul_tn_matches_reference() {
        let mut rng = SeededRng::new(4);
        for &(m, k, n) in &[(1, 5, 1), (5, 8, 7), (34, 40, 33), (65, 64, 66)] {
            let a = rng.normal_matrix(k, m, 1.0);
            let b = rng.normal_matrix(k, n, 1.0);
            let fast = a.matmul_tn(&b).unwrap();
            let slow = reference::matmul_tn(&a, &b);
            assert!(fast.approx_eq(&slow, 1e-3), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = SeededRng::new(4);
        let a = rng.normal_matrix(8, 5, 1.0);
        let b = rng.normal_matrix(8, 7, 1.0);
        let fast = a.matmul_tn(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn blocked_kernels_are_bitwise_equal_to_reference() {
        // The blocked/unrolled kernels keep the textbook ascending-k
        // accumulation chain per output element, so they must reproduce the
        // naive reference bit-for-bit — not just approximately. (Training
        // trajectories on the tiny models are sensitive to accumulation
        // order, so this pins the numerics the recorded results/ were
        // generated with.)
        let mut rng = SeededRng::new(6);
        for &(m, k, n) in &[(5, 7, 3), (33, 40, 17), (64, 70, 65)] {
            let a = rng.normal_matrix(m, k, 1.0);
            let b = rng.normal_matrix(k, n, 1.0);
            assert_eq!(
                a.matmul(&b).unwrap().as_slice(),
                reference::matmul(&a, &b).as_slice(),
                "nn bits differ at {m}x{k}x{n}"
            );
            let bt = rng.normal_matrix(n, k, 1.0);
            assert_eq!(
                a.matmul_nt(&bt).unwrap().as_slice(),
                reference::matmul_nt(&a, &bt).as_slice(),
                "nt bits differ at {m}x{k}x{n}"
            );
            let at = rng.normal_matrix(k, m, 1.0);
            assert_eq!(
                at.matmul_tn(&b).unwrap().as_slice(),
                reference::matmul_tn(&at, &b).as_slice(),
                "tn bits differ at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn packed_path_is_bitwise_equal_to_reference() {
        // Sizes past the packing cutoff with awkward edges: the packed
        // SIMD driver (when this host has lanes) must reproduce the
        // reference chain exactly, like the legacy kernels do. Runs under
        // both `simd` and `scalar` so the dispatch seam itself is pinned.
        let mut rng = SeededRng::new(7);
        for family in ["simd", "scalar"] {
            for &(m, k, n) in &[(37, 41, 43), (64, 64, 64), (70, 33, 130)] {
                let a = rng.normal_matrix(m, k, 1.0);
                let b = rng.normal_matrix(k, n, 1.0);
                let bt = rng.normal_matrix(n, k, 1.0);
                let at = rng.normal_matrix(k, m, 1.0);
                let (nn, nt, tn) = with_gemm_env(Some(family), || {
                    (
                        a.matmul(&b).unwrap(),
                        a.matmul_nt(&bt).unwrap(),
                        at.matmul_tn(&b).unwrap(),
                    )
                });
                assert_eq!(
                    nn.as_slice(),
                    reference::matmul(&a, &b).as_slice(),
                    "{family} nn bits differ at {m}x{k}x{n}"
                );
                assert_eq!(
                    nt.as_slice(),
                    reference::matmul_nt(&a, &bt).as_slice(),
                    "{family} nt bits differ at {m}x{k}x{n}"
                );
                assert_eq!(
                    tn.as_slice(),
                    reference::matmul_tn(&at, &b).as_slice(),
                    "{family} tn bits differ at {m}x{k}x{n}"
                );
            }
        }
    }

    #[test]
    fn into_variants_match_and_reuse_output() {
        let mut rng = SeededRng::new(8);
        let a = rng.normal_matrix(33, 20, 1.0);
        let b = rng.normal_matrix(20, 17, 1.0);
        let mut out = Matrix::filled(33, 17, f32::NAN); // overwritten, not accumulated
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out.as_slice(), a.matmul(&b).unwrap().as_slice());
        // Second product into the same buffer: same bits again.
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out.as_slice(), a.matmul(&b).unwrap().as_slice());

        let mut wrong = Matrix::zeros(4, 4);
        assert!(a.matmul_into(&b, &mut wrong).is_err());
        assert!(a.matmul_nt_into(&b, &mut wrong).is_err());
        let bt = b.transpose();
        let mut out_nt = Matrix::zeros(33, 17);
        a.matmul_nt_into(&bt, &mut out_nt).unwrap();
        assert_eq!(out_nt.as_slice(), out.as_slice());
        let at = a.transpose();
        let mut out_tn = Matrix::zeros(33, 17);
        at.matmul_tn_into(&b, &mut out_tn).unwrap();
        assert_eq!(out_tn.as_slice(), out.as_slice());
    }

    #[test]
    fn shape_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul_nt(&Matrix::zeros(4, 4)).is_err());
        assert!(a.matmul_tn(&Matrix::zeros(3, 3)).is_err());
        assert!(a.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn empty_products() {
        // Degenerate dimensions must not panic and must keep their shapes.
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(a.matmul(&b).unwrap().shape(), (0, 3));
        let c = Matrix::zeros(3, 0);
        let d = Matrix::zeros(0, 2);
        assert_eq!(c.matmul(&d).unwrap().shape(), (3, 2));
        assert_eq!(c.matmul_nt(&Matrix::zeros(5, 0)).unwrap().shape(), (3, 5));
        assert_eq!(d.matmul_tn(&Matrix::zeros(0, 4)).unwrap().shape(), (2, 4));
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = SeededRng::new(5);
        let a = rng.normal_matrix(6, 4, 1.0);
        let v = vec![1.0, -2.0, 0.5, 3.0];
        let mv = a.matvec(&v).unwrap();
        let col = Matrix::from_vec(4, 1, v).unwrap();
        let mm = a.matmul(&col).unwrap();
        for (i, &x) in mv.iter().enumerate() {
            assert!((x - mm[(i, 0)]).abs() < 1e-5);
        }
    }

    #[test]
    fn dot_product() {
        assert_eq!(Matrix::dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        // Length that exercises both the unrolled body and the tail.
        let a: Vec<f32> = (0..11).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..11).map(|i| (i + 1) as f32).collect();
        let expect: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((Matrix::dot(&a, &b) - expect).abs() < 1e-4);
    }
}
