//! Naive reference GEMM kernels: the shared test oracle.
//!
//! Every product in [`crate::Matrix`]'s optimized GEMM family (`A·B`,
//! `A·Bᵀ`, `Aᵀ·B`) is validated against the corresponding textbook triple
//! loop here, both by the unit tests in `gemm.rs` and by the property tests
//! in `tests/parallel_kernels.rs`. Keeping the oracle in one place means
//! there is exactly one definition of "the right answer" — the optimized
//! kernels may reorder accumulation for speed, the oracle never does.

use crate::Matrix;

/// Textbook `A·B`: `out[i][j] = Σ_k a[i][k]·b[k][j]`, accumulated in
/// ascending `k` order with a single accumulator.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "reference matmul shape");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a[(i, k)] * b[(k, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// Textbook `A·Bᵀ`: `out[i][j] = Σ_k a[i][k]·b[j][k]`.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "reference matmul_nt shape");
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a[(i, k)] * b[(j, k)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// Textbook `Aᵀ·B`: `out[i][j] = Σ_k a[k][i]·b[k][j]`.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "reference matmul_tn shape");
    let mut out = Matrix::zeros(a.cols(), b.cols());
    for i in 0..a.cols() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for k in 0..a.rows() {
                acc += a[(k, i)] * b[(k, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}
