//! Top-k selection and threshold utilities.
//!
//! The paper selects strong attention connections two ways: *row-wise top-k*
//! over (estimated) attention scores (§2.2, §3.1), and *threshold
//! comparison* against a preset value in the hardware Detector (§4.3). Both
//! primitives live here, along with helpers to convert selections into the
//! binary masks the rest of the stack consumes.

use crate::Matrix;

/// Indices of the `k` largest values in `row`, in descending value order.
///
/// Ties are broken toward the lower index so that results are deterministic.
/// If `k >= row.len()` every index is returned.
///
/// # Example
///
/// ```
/// use dota_tensor::topk::top_k_indices;
///
/// let idx = top_k_indices(&[0.1, 0.9, 0.5], 2);
/// assert_eq!(idx, vec![1, 2]);
/// ```
pub fn top_k_indices(row: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..row.len()).collect();
    let k = k.min(row.len());
    idx.sort_by(|&a, &b| {
        row[b]
            .partial_cmp(&row[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Row-wise top-k selection over a score matrix, producing one index set per
/// row. Every row keeps exactly `k` entries (the equal-`k` workload-balance
/// constraint of §4.3), so downstream token-parallel execution stays
/// synchronized across rows.
pub fn top_k_rows(scores: &Matrix, k: usize) -> Vec<Vec<usize>> {
    scores
        .rows_iter()
        .map(|row| top_k_indices(row, k))
        .collect()
}

/// Converts per-row selected indices into a dense boolean mask with the given
/// number of columns.
///
/// # Panics
///
/// Panics if any index is `>= cols`.
pub fn indices_to_mask(selected: &[Vec<usize>], cols: usize) -> Vec<Vec<bool>> {
    selected
        .iter()
        .map(|row| {
            let mut mask = vec![false; cols];
            for &i in row {
                assert!(i < cols, "selected index {i} out of bounds ({cols})");
                mask[i] = true;
            }
            mask
        })
        .collect()
}

/// Per-row threshold selection: keep entry `(r, c)` when
/// `scores[(r, c)] >= threshold`. This models the hardware Detector's
/// comparator (§4.3), which compares estimated scores against a preset
/// threshold rather than sorting.
pub fn threshold_mask(scores: &Matrix, threshold: f32) -> Vec<Vec<bool>> {
    scores
        .rows_iter()
        .map(|row| row.iter().map(|&x| x >= threshold).collect())
        .collect()
}

/// Finds, per row, the threshold that would keep exactly `k` entries; returns
/// the k-th largest value of each row. Used to calibrate hardware threshold
/// registers from a validation set (§3.1).
pub fn kth_value_rows(scores: &Matrix, k: usize) -> Vec<f32> {
    scores
        .rows_iter()
        .map(|row| {
            let idx = top_k_indices(row, k);
            idx.last().map(|&i| row[i]).unwrap_or(f32::NEG_INFINITY)
        })
        .collect()
}

/// Fraction of `true` entries in a mask.
pub fn mask_density(mask: &[Vec<bool>]) -> f64 {
    let total: usize = mask.iter().map(|r| r.len()).sum();
    if total == 0 {
        return 0.0;
    }
    let kept: usize = mask.iter().map(|r| r.iter().filter(|&&b| b).count()).sum();
    kept as f64 / total as f64
}

/// Overlap between two per-row index selections: the mean fraction of
/// `reference` indices also present in `candidate`. This is the detection
/// *recall* metric used to evaluate detector quality against oracle top-k.
///
/// # Panics
///
/// Panics if the two selections have different row counts.
pub fn selection_recall(reference: &[Vec<usize>], candidate: &[Vec<usize>]) -> f64 {
    assert_eq!(reference.len(), candidate.len(), "row count mismatch");
    if reference.is_empty() {
        return 1.0;
    }
    let mut acc = 0.0;
    for (r, c) in reference.iter().zip(candidate) {
        if r.is_empty() {
            acc += 1.0;
            continue;
        }
        let cset: std::collections::HashSet<usize> = c.iter().copied().collect();
        let hit = r.iter().filter(|i| cset.contains(i)).count();
        acc += hit as f64 / r.len() as f64;
    }
    acc / reference.len() as f64
}

/// Number of entries each row keeps under `mask`.
pub fn row_counts(mask: &[Vec<bool>]) -> Vec<usize> {
    mask.iter()
        .map(|r| r.iter().filter(|&&b| b).count())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    #[test]
    fn top_k_basic() {
        let row = [0.2, 0.8, 0.5, 0.9];
        assert_eq!(top_k_indices(&row, 2), vec![3, 1]);
        assert_eq!(top_k_indices(&row, 0), Vec::<usize>::new());
        assert_eq!(top_k_indices(&row, 10).len(), 4);
    }

    #[test]
    fn top_k_tie_break_deterministic() {
        let row = [1.0, 1.0, 1.0];
        assert_eq!(top_k_indices(&row, 2), vec![0, 1]);
    }

    #[test]
    fn top_k_rows_equal_k() {
        let mut rng = SeededRng::new(1);
        let m = rng.normal_matrix(8, 16, 1.0);
        let sel = top_k_rows(&m, 4);
        assert!(sel.iter().all(|r| r.len() == 4));
    }

    #[test]
    fn indices_to_mask_round_trip() {
        let sel = vec![vec![0, 2], vec![1]];
        let mask = indices_to_mask(&sel, 3);
        assert_eq!(mask[0], vec![true, false, true]);
        assert_eq!(mask[1], vec![false, true, false]);
        assert_eq!(row_counts(&mask), vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indices_to_mask_checks_bounds() {
        let _ = indices_to_mask(&[vec![5]], 3);
    }

    #[test]
    fn threshold_mask_matches_kth_value() {
        let m = Matrix::from_rows(&[&[0.1, 0.5, 0.9, 0.3]]).unwrap();
        let kth = kth_value_rows(&m, 2);
        let mask = threshold_mask(&m, kth[0]);
        assert_eq!(row_counts(&mask), vec![2]);
        assert!(mask[0][2] && mask[0][1]);
    }

    #[test]
    fn mask_density_counts() {
        let mask = vec![vec![true, false], vec![false, false]];
        assert!((mask_density(&mask) - 0.25).abs() < 1e-9);
        assert_eq!(mask_density(&[]), 0.0);
    }

    #[test]
    fn recall_perfect_and_disjoint() {
        let a = vec![vec![0, 1], vec![2, 3]];
        assert_eq!(selection_recall(&a, &a), 1.0);
        let b = vec![vec![4, 5], vec![6, 7]];
        assert_eq!(selection_recall(&a, &b), 0.0);
        let c = vec![vec![0, 5], vec![2, 7]];
        assert!((selection_recall(&a, &c) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn recall_of_topk_under_noise_degrades_gracefully() {
        let mut rng = SeededRng::new(2);
        let scores = rng.normal_matrix(16, 64, 1.0);
        let noisy = scores
            .add(&rng.normal_matrix(16, 64, 0.1))
            .expect("same shape");
        let exact = top_k_rows(&scores, 8);
        let approx = top_k_rows(&noisy, 8);
        let recall = selection_recall(&exact, &approx);
        assert!(recall > 0.7, "recall {recall}");
    }
}
