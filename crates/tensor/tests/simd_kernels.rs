//! Property tests pinning down the kernel-family numerics contract
//! (`DOTA_GEMM`, see `dota_tensor::simd`):
//!
//! - `scalar` and `simd` are **bitwise identical** to the naive reference
//!   chain (ascending-`k`, one accumulator per output element) on every
//!   shape — odd extents, non-multiples of the 4×16 tile, 1×N, M×1.
//!   This is the invariant that lets `auto` select the SIMD path without
//!   shifting golden results.
//! - `fma` fuses the multiply-add rounding and (in `matvec`) reassociates
//!   into four chains, so it is only **approximately** equal: within
//!   [`FMA_ULP_TOL`] ULPs of the reference, or [`FMA_ABS_TOL`] absolutely
//!   for near-zero outputs where cancellation makes ULP distance
//!   meaningless.
//! - Every family is **thread-count invariant**: identical bits under
//!   `DOTA_THREADS` ∈ {1, 4, 8} (panelization is fixed; workers only
//!   claim disjoint panels).

use dota_tensor::rng::SeededRng;
use dota_tensor::simd::{self, KernelFamily};
use dota_tensor::{reference, Matrix};
use proptest::prelude::*;

/// Documented tolerance for the opt-in `fma` family vs the exact scalar
/// chain: fused rounding changes each partial sum by ≤ half an ULP, and
/// with K ≤ ~200 terms the drift stays far below this bound for
/// non-cancelling data.
const FMA_ULP_TOL: u32 = 256;
/// Absolute fallback for outputs near zero, where heavy cancellation
/// makes ULP distance unbounded.
const FMA_ABS_TOL: f32 = 1e-4;

/// Runs `body` with `DOTA_GEMM` (and optionally `DOTA_THREADS`) forced,
/// restoring both afterwards. The environment is process-global, so all
/// tests in this binary serialize on one lock.
fn with_env<R>(family: &str, threads: Option<&str>, body: impl FnOnce() -> R) -> R {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev_fam = std::env::var(simd::GEMM_ENV).ok();
    let prev_thr = std::env::var("DOTA_THREADS").ok();
    std::env::set_var(simd::GEMM_ENV, family);
    match threads {
        Some(v) => std::env::set_var("DOTA_THREADS", v),
        None => std::env::remove_var("DOTA_THREADS"),
    }
    let out = body();
    match prev_fam {
        Some(v) => std::env::set_var(simd::GEMM_ENV, v),
        None => std::env::remove_var(simd::GEMM_ENV),
    }
    match prev_thr {
        Some(v) => std::env::set_var("DOTA_THREADS", v),
        None => std::env::remove_var("DOTA_THREADS"),
    }
    out
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// ULP distance between two finite f32s of the same sign region, via the
/// monotone mapping of the bit pattern onto a signed line.
fn ulp_diff(a: f32, b: f32) -> u32 {
    fn key(x: f32) -> i64 {
        let b = x.to_bits() as i32;
        i64::from(if b < 0 { i32::MIN ^ b } else { b })
    }
    key(a).abs_diff(key(b)).try_into().unwrap_or(u32::MAX)
}

fn assert_close_fma(got: &Matrix, want: &Matrix, ctx: &str) {
    for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
        let ok = ulp_diff(*g, *w) <= FMA_ULP_TOL || (g - w).abs() <= FMA_ABS_TOL;
        assert!(
            ok,
            "{ctx}: fma result {g} vs reference {w} outside tolerance"
        );
    }
}

/// The families this host can actually run, `scalar` first.
fn families() -> Vec<KernelFamily> {
    let mut fams = vec![KernelFamily::Scalar];
    if simd::simd_available() {
        fams.push(KernelFamily::Simd);
    }
    if simd::fma_available() {
        fams.push(KernelFamily::Fma);
    }
    fams
}

/// All three layouts of one operand pair (see `parallel_kernels.rs` for
/// the shape conventions).
fn all_products(a: &Matrix, b_nn: &Matrix, b_nt: &Matrix) -> (Matrix, Matrix, Matrix) {
    let nn = a.matmul(b_nn).expect("nn shape");
    let nt = a.matmul_nt(b_nt).expect("nt shape");
    let tn = a.transpose().matmul_tn(b_nn).expect("tn shape");
    (nn, nt, tn)
}

fn check_family_vs_reference(m: usize, k: usize, n: usize, seed: u64) {
    let mut rng = SeededRng::new(seed);
    let a = rng.normal_matrix(m, k, 1.0);
    let b_nn = rng.normal_matrix(k, n, 1.0);
    let b_nt = rng.normal_matrix(n, k, 1.0);
    let want = (
        reference::matmul(&a, &b_nn),
        reference::matmul_nt(&a, &b_nt),
        reference::matmul_tn(&a.transpose(), &b_nn),
    );
    for fam in families() {
        let got = with_env(fam.name(), Some("1"), || all_products(&a, &b_nn, &b_nt));
        let ctx = |op: &str| format!("{op} {m}x{k}x{n} family {}", fam.name());
        if fam == KernelFamily::Fma {
            assert_close_fma(&got.0, &want.0, &ctx("matmul"));
            assert_close_fma(&got.1, &want.1, &ctx("matmul_nt"));
            assert_close_fma(&got.2, &want.2, &ctx("matmul_tn"));
        } else {
            // scalar and simd share the reference's exact rounding.
            assert_eq!(bits(&got.0), bits(&want.0), "{}", ctx("matmul"));
            assert_eq!(bits(&got.1), bits(&want.1), "{}", ctx("matmul_nt"));
            assert_eq!(bits(&got.2), bits(&want.2), "{}", ctx("matmul_tn"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn families_match_reference_on_odd_shapes(
        m in 1usize..40,
        k in 1usize..70,
        n in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        check_family_vs_reference(m, k, n, seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn families_match_reference_above_pack_cutoff(
        m in 17usize..45,
        k in 17usize..45,
        n in 17usize..45,
        seed in 0u64..1_000_000,
    ) {
        // m·k·n ≥ 17³ > the packing cutoff, so simd/fma take the packed
        // microkernel path (tile edges included: extents here are not
        // multiples of the 4×16 tile).
        check_family_vs_reference(m, k, n, seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn degenerate_rows_and_columns_match_reference(
        extent in 1usize..130,
        k in 1usize..96,
        seed in 0u64..1_000_000,
    ) {
        // 1×N: one output row, wider than any tile. M×1: one output
        // column, narrower than every SIMD lane — all edge-tile logic.
        check_family_vs_reference(1, k, extent, seed);
        check_family_vs_reference(extent, k, 1, seed.wrapping_add(1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn every_family_is_thread_count_invariant(
        m in 30usize..70,
        k in 30usize..70,
        n in 30usize..70,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = rng.normal_matrix(m, k, 1.0);
        let b_nn = rng.normal_matrix(k, n, 1.0);
        let b_nt = rng.normal_matrix(n, k, 1.0);
        for fam in families() {
            let serial = with_env(fam.name(), Some("1"), || all_products(&a, &b_nn, &b_nt));
            for threads in ["4", "8"] {
                let threaded =
                    with_env(fam.name(), Some(threads), || all_products(&a, &b_nn, &b_nt));
                prop_assert_eq!(
                    bits(&serial.0), bits(&threaded.0),
                    "matmul family {} threads {}", fam.name(), threads
                );
                prop_assert_eq!(
                    bits(&serial.1), bits(&threaded.1),
                    "matmul_nt family {} threads {}", fam.name(), threads
                );
                prop_assert_eq!(
                    bits(&serial.2), bits(&threaded.2),
                    "matmul_tn family {} threads {}", fam.name(), threads
                );
            }
        }
    }
}

#[test]
fn matvec_families_match_reference() {
    let mut rng = SeededRng::new(5);
    let a = rng.normal_matrix(33, 129, 1.0);
    let x: Vec<f32> = (0..129).map(|i| (i as f32 * 0.37).sin()).collect();
    let want = with_env("scalar", Some("1"), || a.matvec(&x).expect("shape"));
    for fam in families() {
        let got = with_env(fam.name(), Some("1"), || a.matvec(&x).expect("shape"));
        if fam == KernelFamily::Fma {
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    ulp_diff(*g, *w) <= FMA_ULP_TOL || (g - w).abs() <= FMA_ABS_TOL,
                    "fma matvec {g} vs {w}"
                );
            }
        } else {
            let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(gb, wb, "family {}", fam.name());
        }
    }
}

#[test]
fn auto_never_selects_fma() {
    // `auto` must stay on the bit-exact families; fused rounding is
    // strictly opt-in.
    let active = with_env("auto", None, KernelFamily::active);
    assert_ne!(active, KernelFamily::Fma);
    let dflt = with_env("", None, KernelFamily::active);
    assert_ne!(dflt, KernelFamily::Fma);
}
