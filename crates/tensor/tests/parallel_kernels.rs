//! Property tests pinning down the parallel GEMM contract: for every
//! product layout and every shape — including empty and 1×N — the result is
//! bitwise identical no matter how many threads `DOTA_THREADS` allows, and
//! `DOTA_THREADS=1` reproduces the default-pool output exactly.
//!
//! Without the `parallel` feature these properties hold trivially (every
//! path is serial); with it they exercise the row-partitioned dispatch in
//! `dota_tensor`'s GEMM kernels.

use dota_tensor::rng::SeededRng;
use dota_tensor::{reference, Matrix};
use proptest::prelude::*;

/// Runs `body` with `DOTA_THREADS` set to `val` (or unset for `None`),
/// restoring the previous value afterwards. The environment is
/// process-global, so all tests in this binary serialize on one lock.
fn with_threads<R>(val: Option<&str>, body: impl FnOnce() -> R) -> R {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::env::var("DOTA_THREADS").ok();
    match val {
        Some(v) => std::env::set_var("DOTA_THREADS", v),
        None => std::env::remove_var("DOTA_THREADS"),
    }
    let out = body();
    match prev {
        Some(v) => std::env::set_var("DOTA_THREADS", v),
        None => std::env::remove_var("DOTA_THREADS"),
    }
    out
}

/// The exact bit patterns of a matrix, for bitwise (not approximate)
/// comparison across thread counts.
fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// All three products of one operand pair, as `(nn, nt, tn)`.
/// `a` is `m×k`; `b_nn` is `k×n`, `b_nt` is `n×k`, `b_tn` reuses `b_nn`
/// against `a`'s transpose-view semantics (`a^T · a b_nn` would change
/// shape, so tn multiplies `a_t: k×m` by `b_nn`).
fn all_products(a: &Matrix, b_nn: &Matrix, b_nt: &Matrix) -> (Matrix, Matrix, Matrix) {
    let nn = a.matmul(b_nn).expect("nn shape");
    let nt = a.matmul_nt(b_nt).expect("nt shape");
    // For tn, treat `b_nn` (k×n) as the right operand of `a^T`-style
    // products with a left operand of matching row count.
    let a_for_tn = a.transpose(); // k×m — so a_for_tn^T · b requires b: k×n
    let tn = a_for_tn.matmul_tn(b_nn).expect("tn shape");
    (nn, nt, tn)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn arbitrary_shapes_are_thread_count_invariant(
        m in 0usize..10,
        k in 0usize..10,
        n in 0usize..10,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = rng.normal_matrix(m, k, 1.0);
        let b_nn = rng.normal_matrix(k, n, 1.0);
        let b_nt = rng.normal_matrix(n, k, 1.0);
        let serial = with_threads(Some("1"), || all_products(&a, &b_nn, &b_nt));
        let threaded = with_threads(Some("4"), || all_products(&a, &b_nn, &b_nt));
        prop_assert_eq!(bits(&serial.0), bits(&threaded.0), "matmul at {}x{}x{}", m, k, n);
        prop_assert_eq!(bits(&serial.1), bits(&threaded.1), "matmul_nt at {}x{}x{}", m, k, n);
        prop_assert_eq!(bits(&serial.2), bits(&threaded.2), "matmul_tn at {}x{}x{}", m, k, n);
        // And the optimized kernels stay correct: compare against the
        // naive triple-loop oracle.
        prop_assert!(serial.0.approx_eq(&reference::matmul(&a, &b_nn), 1e-3));
        prop_assert!(serial.1.approx_eq(&reference::matmul_nt(&a, &b_nt), 1e-3));
        prop_assert!(serial.2.approx_eq(&reference::matmul_tn(&a.transpose(), &b_nn), 1e-3));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn shapes_above_parallel_cutoff_are_thread_count_invariant(
        m in 64usize..90,
        k in 64usize..90,
        n in 64usize..90,
        seed in 0u64..1_000_000,
    ) {
        // m·k·n ≥ 64³ here, so with the `parallel` feature these products
        // take the threaded path whenever DOTA_THREADS > 1.
        let mut rng = SeededRng::new(seed);
        let a = rng.normal_matrix(m, k, 1.0);
        let b_nn = rng.normal_matrix(k, n, 1.0);
        let b_nt = rng.normal_matrix(n, k, 1.0);
        let serial = with_threads(Some("1"), || all_products(&a, &b_nn, &b_nt));
        for threads in ["2", "3", "8"] {
            let threaded = with_threads(Some(threads), || all_products(&a, &b_nn, &b_nt));
            prop_assert_eq!(bits(&serial.0), bits(&threaded.0), "matmul, {} threads", threads);
            prop_assert_eq!(bits(&serial.1), bits(&threaded.1), "matmul_nt, {} threads", threads);
            prop_assert_eq!(bits(&serial.2), bits(&threaded.2), "matmul_tn, {} threads", threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn one_by_n_rows_are_thread_count_invariant(
        n in 1usize..600,
        seed in 0u64..1_000_000,
    ) {
        // 1×N: a single output row can never be split across workers.
        let mut rng = SeededRng::new(seed);
        let a = rng.normal_matrix(1, 48, 1.0);
        let b = rng.normal_matrix(48, n, 1.0);
        let b_t = rng.normal_matrix(n, 48, 1.0);
        let serial = with_threads(Some("1"), || {
            (a.matmul(&b).unwrap(), a.matmul_nt(&b_t).unwrap())
        });
        let threaded = with_threads(Some("8"), || {
            (a.matmul(&b).unwrap(), a.matmul_nt(&b_t).unwrap())
        });
        prop_assert_eq!(bits(&serial.0), bits(&threaded.0));
        prop_assert_eq!(bits(&serial.1), bits(&threaded.1));
    }
}

#[test]
fn empty_operands_do_not_panic_under_any_pool() {
    for threads in [Some("1"), Some("4"), None] {
        with_threads(threads, || {
            let a = Matrix::zeros(0, 7);
            let b = Matrix::zeros(7, 3);
            assert_eq!(a.matmul(&b).unwrap().shape(), (0, 3));
            let c = Matrix::zeros(4, 0);
            assert_eq!(c.matmul(&Matrix::zeros(0, 2)).unwrap().shape(), (4, 2));
            assert_eq!(c.matmul_nt(&Matrix::zeros(6, 0)).unwrap().shape(), (4, 6));
            assert_eq!(a.matmul_tn(&Matrix::zeros(0, 5)).unwrap().shape(), (7, 5));
        });
    }
}

#[test]
fn default_pool_matches_threads_one() {
    // The machine's default pool (DOTA_THREADS unset) must produce the same
    // bits as an explicitly serial run, at a size big enough to engage the
    // parallel path on multi-core hosts.
    let mut rng = SeededRng::new(7);
    let a = rng.normal_matrix(96, 80, 1.0);
    let b = rng.normal_matrix(80, 96, 1.0);
    let b_t = rng.normal_matrix(96, 80, 1.0);
    let serial = with_threads(Some("1"), || all_products(&a, &b, &b_t));
    let default_pool = with_threads(None, || all_products(&a, &b, &b_t));
    assert_eq!(bits(&serial.0), bits(&default_pool.0));
    assert_eq!(bits(&serial.1), bits(&default_pool.1));
    assert_eq!(bits(&serial.2), bits(&default_pool.2));
}
