//! Host-side parallel execution layer for the DOTA reproduction.
//!
//! The paper's premise is throughput: detect-and-omit exists so attention
//! runs as fast as the hardware allows. This crate supplies the *host*
//! counterpart of that idea — a small, dependency-free fork/join layer over
//! `std::thread::scope` with a rayon-like API, used by the GEMM kernels
//! (`dota-tensor`, behind its `parallel` feature), the per-head attention
//! fan-out (`dota-transformer`), batched workload evaluation (`dota-core`)
//! and the benchmark sweep harness (`dota-bench`).
//!
//! Two primitives cover all of those:
//!
//! * [`par_map`] — order-preserving parallel map over a slice with dynamic
//!   (work-stealing-style) scheduling; used for heads, sequences and sweep
//!   points, whose costs vary.
//! * [`par_partition_mut`] — static contiguous partitioning of a mutable
//!   buffer on unit boundaries; used for row-block GEMM, where partitioning
//!   by output rows keeps parallel results bitwise identical to serial.
//!
//! The pool size is `min(DOTA_THREADS, available cores)`; setting
//! `DOTA_THREADS=1` forces fully serial execution, which CI uses to pin
//! down reproducibility. The environment variable is re-read on every
//! dispatch (the cost is trivial next to any work worth parallelizing), so
//! tests can toggle it at runtime.

#![deny(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Name of the environment variable capping the pool size.
pub const THREADS_ENV: &str = "DOTA_THREADS";

thread_local! {
    /// Set while the current thread is a pool worker; nested dispatches
    /// check it and stay serial instead of forking a second pool.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` when called from inside a [`par_map`] / [`par_partition_mut`] /
/// [`par_panels_mut`] worker.
///
/// Library hot paths that may run both at top level and underneath another
/// fan-out (e.g. GEMM inside the per-head attention fan-out) use this to
/// avoid spawning a pool per worker: nested parallelism oversubscribes the
/// machine — `threads²` runnable threads fighting over the same caches —
/// and loses to running the inner work serially on the worker that owns it.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Marks the current thread as a pool worker for the duration of `body`.
fn as_worker<R>(body: impl FnOnce() -> R) -> R {
    IN_WORKER.with(|w| w.set(true));
    let out = body();
    IN_WORKER.with(|w| w.set(false));
    out
}

/// The number of worker threads a dispatch may use: `DOTA_THREADS` if set
/// to a positive integer, otherwise the machine's available parallelism.
///
/// A malformed `DOTA_THREADS` falls back to the machine default so hot
/// library paths never fail; front ends should reject it up front with
/// [`num_threads_checked`] instead.
pub fn num_threads() -> usize {
    num_threads_checked().unwrap_or_else(|_| available())
}

/// [`num_threads`] that surfaces a malformed `DOTA_THREADS` as an error
/// instead of silently using the machine default (a typo'd budget would
/// otherwise invalidate benchmark results without any sign of it).
///
/// # Errors
///
/// A description of the bad value when `DOTA_THREADS` is set but is not a
/// positive integer.
pub fn num_threads_checked() -> Result<usize, String> {
    match std::env::var(THREADS_ENV) {
        Err(_) => Ok(available()),
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!(
                "{THREADS_ENV} must be a positive integer, got `{v}`"
            )),
        },
    }
}

fn available() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Order-preserving parallel map: returns `f(i, &items[i])` for every `i`,
/// in input order.
///
/// Work is claimed dynamically (one atomic increment per item), so uneven
/// per-item costs — long vs short sequences, dense vs sparse heads — stay
/// balanced. Falls back to a plain serial map when the pool has one thread
/// or there is at most one item.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = if in_worker() {
        1
    } else {
        num_threads().min(items.len())
    };
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    as_worker(|| {
                        let mut got = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            got.push((i, f(i, &items[i])));
                        }
                        got
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    for w in &mut per_worker {
        indexed.append(w);
    }
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Splits `data` into one contiguous span per worker, aligned to `unit`
/// boundaries, and runs `f(first_unit_index, span)` on each span in
/// parallel.
///
/// `data.len()` must be a multiple of `unit` (a row-major matrix with
/// `unit = row length` is the intended use). Because the partition is by
/// whole units and `f` computes each unit independently, the result is
/// bitwise identical to calling `f(0, data)` serially — which is exactly
/// what happens when the pool has one thread.
///
/// # Panics
///
/// Panics if `unit == 0` or `data.len()` is not a multiple of `unit`.
pub fn par_partition_mut<T, F>(data: &mut [T], unit: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit > 0, "unit must be positive");
    assert_eq!(data.len() % unit, 0, "data must divide into whole units");
    let n_units = data.len() / unit;
    if n_units == 0 {
        return;
    }
    let workers = if in_worker() {
        1
    } else {
        num_threads().min(n_units)
    };
    if workers <= 1 {
        f(0, data);
        return;
    }
    // Ceil-divide so every worker gets a near-equal contiguous block.
    let units_per_worker = n_units.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut first_unit = 0;
        while !rest.is_empty() {
            let take = units_per_worker.min(rest.len() / unit) * unit;
            let (span, tail) = rest.split_at_mut(take);
            let start = first_unit;
            let f = &f;
            scope.spawn(move || as_worker(|| f(start, span)));
            first_unit += take / unit;
            rest = tail;
        }
    });
}

/// A raw span of a larger buffer, shareable across worker threads. Each
/// panel index is claimed by exactly one worker (an atomic ticket), so the
/// reconstructed `&mut [T]` slices never alias.
struct PanelPtr<T>(*mut T);
// SAFETY: the pointer is only dereferenced through disjoint panel ranges,
// each owned by the single worker that claimed the panel's ticket.
unsafe impl<T: Send> Send for PanelPtr<T> {}
unsafe impl<T: Send> Sync for PanelPtr<T> {}

/// Splits `data` into fixed-size panels of `panel_units` units (`unit`
/// elements each; the last panel may be short) and runs
/// `f(first_unit_index, panel_span)` over them with **dynamic claiming**:
/// workers pull the next unclaimed panel from an atomic ticket counter, so
/// a slow panel (cache-cold rows, NUMA effects, a descheduled worker)
/// delays only its owner instead of the whole static partition.
///
/// This is the GEMM row-panel scheduler: panels are sized to the kernel's
/// L2 blocking (`MC` rows), claiming is load-balanced, and because every
/// panel is computed by identical code whichever worker claims it, the
/// result is bitwise identical to the serial panel loop — which is exactly
/// what runs when the pool has one thread, the data holds a single panel,
/// or the caller is itself a pool worker (nested dispatch stays serial,
/// see [`in_worker`]).
///
/// # Panics
///
/// Panics if `unit == 0`, `panel_units == 0`, or `data.len()` is not a
/// multiple of `unit`.
pub fn par_panels_mut<T, F>(data: &mut [T], unit: usize, panel_units: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit > 0, "unit must be positive");
    assert!(panel_units > 0, "panel_units must be positive");
    assert_eq!(data.len() % unit, 0, "data must divide into whole units");
    let n_units = data.len() / unit;
    if n_units == 0 {
        return;
    }
    let n_panels = n_units.div_ceil(panel_units);
    let workers = if in_worker() {
        1
    } else {
        num_threads().min(n_panels)
    };
    let panel_span = |p: usize| {
        let first = p * panel_units;
        let units = panel_units.min(n_units - first);
        (first, first * unit, units * unit)
    };
    if workers <= 1 {
        for p in 0..n_panels {
            let (first, lo, len) = panel_span(p);
            f(first, &mut data[lo..lo + len]);
        }
        return;
    }
    let base = PanelPtr(data.as_mut_ptr());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let base = &base;
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                as_worker(|| loop {
                    let p = next.fetch_add(1, Ordering::Relaxed);
                    if p >= n_panels {
                        break;
                    }
                    let (first, lo, len) = panel_span(p);
                    // SAFETY: panel `p` was claimed by this worker alone
                    // (fetch_add tickets are unique) and panels cover
                    // disjoint element ranges of the buffer.
                    let span = unsafe { std::slice::from_raw_parts_mut(base.0.add(lo), len) };
                    f(first, span);
                })
            });
        }
    });
}

/// Number of **physical** cores, best-effort: parsed from Linux
/// `/proc/cpuinfo` (distinct `(physical id, core id)` pairs), falling back
/// to [`available_parallelism`](std::thread::available_parallelism) (which
/// counts logical CPUs) elsewhere or when the parse yields nothing.
///
/// Recorded in bench manifests so `pool_speedup` columns are interpretable:
/// a 2x ceiling on a 2-core host is expected, the same number on a 16-core
/// host is a scheduling bug.
pub fn num_physical_cores() -> usize {
    #[cfg(target_os = "linux")]
    {
        if let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") {
            let mut cores = std::collections::BTreeSet::new();
            let (mut phys, mut core) = (None, None);
            for line in info.lines() {
                let mut kv = line.splitn(2, ':');
                let key = kv.next().unwrap_or("").trim();
                let val = kv.next().unwrap_or("").trim().to_owned();
                match key {
                    "physical id" => phys = Some(val),
                    "core id" => core = Some(val),
                    "" => {
                        if let (Some(p), Some(c)) = (phys.take(), core.take()) {
                            cores.insert((p, c));
                        }
                    }
                    _ => {}
                }
            }
            if let (Some(p), Some(c)) = (phys, core) {
                cores.insert((p, c));
            }
            if !cores.is_empty() {
                return cores.len();
            }
        }
    }
    available()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `body` with `DOTA_THREADS` set to `n`, restoring the previous
    /// value afterwards. Serialized by a mutex since the variable is
    /// process-global.
    fn with_threads<R>(n: Option<&str>, body: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK.lock().unwrap();
        let prev = std::env::var(THREADS_ENV).ok();
        match n {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
        let out = body();
        match prev {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
        out
    }

    #[test]
    fn threads_env_is_validated_by_checked_variant() {
        // valid value: both variants agree
        with_threads(Some("3"), || {
            assert_eq!(num_threads(), 3);
            assert_eq!(num_threads_checked(), Ok(3));
        });
        // unset: both use the machine default
        with_threads(None, || {
            assert_eq!(num_threads_checked(), Ok(num_threads()));
        });
        // malformed values: checked errors with the variable name, the
        // silent variant falls back
        for bad in ["0", "all", "-2", "1.5", ""] {
            with_threads(Some(bad), || {
                let err = num_threads_checked().unwrap_err();
                assert!(err.contains("DOTA_THREADS"), "{err}");
                assert!(err.contains(bad) || bad.is_empty(), "{err}");
                assert!(num_threads() >= 1);
            });
        }
    }

    #[test]
    fn par_map_preserves_order() {
        for threads in ["1", "2", "7"] {
            let got = with_threads(Some(threads), || {
                let items: Vec<usize> = (0..100).collect();
                par_map(&items, |i, &x| {
                    assert_eq!(i, x);
                    x * 3
                })
            });
            assert_eq!(got, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn partition_covers_every_unit_exactly_once() {
        for threads in ["1", "3", "16"] {
            with_threads(Some(threads), || {
                let rows = 37;
                let cols = 5;
                let mut data = vec![0u32; rows * cols];
                par_partition_mut(&mut data, cols, |first_row, span| {
                    for (r, row) in span.chunks_mut(cols).enumerate() {
                        for v in row.iter_mut() {
                            *v += (first_row + r) as u32 + 1;
                        }
                    }
                });
                for (i, &v) in data.iter().enumerate() {
                    assert_eq!(v, (i / cols) as u32 + 1, "unit {i} written once");
                }
            });
        }
    }

    #[test]
    fn partition_handles_empty_and_tiny() {
        let mut empty: Vec<f32> = Vec::new();
        par_partition_mut(&mut empty, 4, |_, _| panic!("no units, no calls"));
        let mut one = vec![1.0f32; 3];
        par_partition_mut(&mut one, 3, |first, span| {
            assert_eq!(first, 0);
            span[0] = 2.0;
        });
        assert_eq!(one[0], 2.0);
    }

    #[test]
    fn env_var_caps_pool() {
        with_threads(Some("1"), || assert_eq!(num_threads(), 1));
        with_threads(Some("4"), || assert_eq!(num_threads(), 4));
        with_threads(Some("garbage"), || assert!(num_threads() >= 1));
        with_threads(None, || assert!(num_threads() >= 1));
    }

    #[test]
    #[should_panic(expected = "whole units")]
    fn partition_rejects_ragged_data() {
        let mut data = vec![0.0f32; 7];
        par_partition_mut(&mut data, 4, |_, _| {});
    }

    #[test]
    fn panels_cover_every_unit_exactly_once() {
        for threads in ["1", "3", "16"] {
            for panel_units in [1usize, 4, 7, 100] {
                with_threads(Some(threads), || {
                    let rows = 37;
                    let cols = 5;
                    let mut data = vec![0u32; rows * cols];
                    par_panels_mut(&mut data, cols, panel_units, |first_row, span| {
                        for (r, row) in span.chunks_mut(cols).enumerate() {
                            for v in row.iter_mut() {
                                *v += (first_row + r) as u32 + 1;
                            }
                        }
                    });
                    for (i, &v) in data.iter().enumerate() {
                        assert_eq!(v, (i / cols) as u32 + 1, "unit {i} written once");
                    }
                });
            }
        }
    }

    #[test]
    fn panels_handle_empty() {
        let mut empty: Vec<f32> = Vec::new();
        par_panels_mut(&mut empty, 4, 2, |_, _| panic!("no units, no calls"));
    }

    #[test]
    fn nested_dispatch_stays_serial() {
        with_threads(Some("4"), || {
            assert!(!in_worker(), "top level is not a worker");
            let items: Vec<usize> = (0..16).collect();
            let nested_flags = par_map(&items, |_, _| {
                // Inside a worker the flag is set, and a nested map must
                // not fork again — its own workers would see the flag too.
                let inner: Vec<bool> = par_map(&[0usize, 1], |_, _| in_worker());
                (in_worker(), inner)
            });
            for (outer, inner) in nested_flags {
                assert!(outer, "worker flag set during outer dispatch");
                assert!(inner.iter().all(|&w| w), "nested map ran in-worker");
            }
            assert!(!in_worker(), "flag cleared after dispatch");
        });
    }

    #[test]
    fn physical_cores_positive() {
        assert!(num_physical_cores() >= 1);
    }
}
