//! Reproducibility guards: the headline numbers of the simulator-side
//! experiments are deterministic, so these tests pin them exactly. If a
//! model change moves them, EXPERIMENTS.md must be re-generated — this
//! suite is the tripwire.

use dota_accel::sched;
use dota_accel::synth::{sample_selection, SelectionProfile};
use dota_core::presets::OperatingPoint;
use dota_core::DotaSystem;
use dota_tensor::rng::SeededRng;
use dota_transformer::flops;
use dota_transformer::TransformerConfig;
use dota_workloads::Benchmark;

#[test]
fn fig3_attention_fractions_pinned() {
    let cfg = TransformerConfig::bert_large(16_384);
    let rows = flops::fig3_sweep(&cfg, &[384, 16_384]);
    assert!(
        (rows[0].attention_fraction - 0.0596).abs() < 5e-3,
        "{}",
        rows[0].attention_fraction
    );
    assert!(
        (rows[1].attention_fraction - 0.7308).abs() < 5e-3,
        "{}",
        rows[1].attention_fraction
    );
}

#[test]
fn fig12_geomeans_pinned() {
    let sys = DotaSystem::paper_default();
    let geomean = |f: &dyn Fn(Benchmark) -> f64| {
        let product: f64 = Benchmark::ALL.iter().map(|&b| f(b).ln()).sum();
        (product / Benchmark::ALL.len() as f64).exp()
    };
    let attn_c = geomean(&|b| {
        sys.speedup_row(b, OperatingPoint::Conservative)
            .attention_vs_gpu
    });
    let elsa_c = geomean(&|b| {
        sys.speedup_row(b, OperatingPoint::Conservative)
            .attention_vs_elsa
    });
    let e2e_c = geomean(&|b| {
        sys.speedup_row(b, OperatingPoint::Conservative)
            .end_to_end_vs_gpu
    });
    // EXPERIMENTS.md records 274x / 4.8x / 12.0x.
    assert!(
        (attn_c / 274.1 - 1.0).abs() < 0.02,
        "attention geomean {attn_c}"
    );
    assert!((elsa_c / 4.8 - 1.0).abs() < 0.05, "elsa geomean {elsa_c}");
    assert!((e2e_c / 12.0 - 1.0).abs() < 0.02, "e2e geomean {e2e_c}");
}

#[test]
fn fig15_optimum_pinned_at_parallelism_4() {
    let n = 2048;
    let k = 205;
    let profile = SelectionProfile::default();
    let mut rng = SeededRng::new(0xf15);
    let sel = sample_selection(n, k, &profile, &mut rng);
    let base = sched::schedule_matrix(&sel, 1, true).total_loads();
    let mut best = (0usize, f64::INFINITY);
    for t in 1..=6 {
        let loads = sched::schedule_matrix(&sel, t, true).total_loads();
        let mem = loads as f64 / base as f64;
        let sched_cost =
            sched::buffer_requirement(t) as f64 / sched::buffer_requirement(4) as f64 * 0.08;
        let total = mem + sched_cost;
        if total < best.1 {
            best = (t, total);
        }
    }
    assert_eq!(best.0, 4, "combined-cost optimum moved off parallelism 4");
}

#[test]
fn paper_worked_examples_pinned() {
    let fig8 = vec![vec![1u32, 2], vec![0, 1, 4], vec![1, 2], vec![0, 2, 4]];
    assert_eq!(sched::row_by_row_loads(&fig8), 10);
    assert_eq!(sched::in_order_schedule(&fig8).total_loads(), 5);
    let fig9 = vec![
        vec![0u32, 1, 2],
        vec![1, 2, 3],
        vec![1, 4, 5],
        vec![2, 3, 4],
    ];
    assert_eq!(sched::in_order_schedule(&fig9).total_loads(), 11);
    assert_eq!(sched::locality_aware_schedule(&fig9).total_loads(), 7);
}

#[test]
fn energy_rows_pinned() {
    let sys = DotaSystem::paper_default();
    let qa = sys.energy_row(Benchmark::Qa, OperatingPoint::Conservative);
    let ret = sys.energy_row(Benchmark::Retrieval, OperatingPoint::Conservative);
    // EXPERIMENTS.md records 103x (QA) and 616x (Retrieval).
    assert!(
        (qa.vs_gpu / 103.0 - 1.0).abs() < 0.03,
        "QA vs GPU {}",
        qa.vs_gpu
    );
    assert!(
        (ret.vs_gpu / 616.0 - 1.0).abs() < 0.03,
        "Retrieval vs GPU {}",
        ret.vs_gpu
    );
}
