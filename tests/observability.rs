//! Observability golden + property tests: the `dota-trace` hardware
//! counters must pin the paper's worked scheduling examples (Figs. 8–10)
//! and stay bitwise identical regardless of how many threads the host
//! fans work across.
//!
//! Sessions are exclusive (`dota_trace::session` serializes through a
//! global gate), so these tests can run under the default multi-threaded
//! test harness without interleaving counters.

use dota_accel::sched;
use std::collections::BTreeMap;

/// The working example of Fig. 8: 4 queries attending to 5 keys.
fn fig8() -> Vec<Vec<u32>> {
    vec![vec![1, 2], vec![0, 1, 4], vec![1, 2], vec![0, 2, 4]]
}

/// The working example of Figs. 9/10.
fn fig9() -> Vec<Vec<u32>> {
    vec![vec![0, 1, 2], vec![1, 2, 3], vec![1, 4, 5], vec![2, 3, 4]]
}

#[test]
fn golden_fig8_row_by_row_vs_in_order() {
    // Fig. 8: row-by-row execution loads 10 keys; token-parallel in-order
    // scheduling of the same pattern loads only 5.
    let guard = dota_trace::session("fig8");
    let rbr = sched::row_by_row_loads(&fig8());
    let ino = sched::in_order_schedule(&fig8());
    assert_eq!(rbr, 10);
    assert_eq!(ino.total_loads(), 5);
    // The counters record exactly what the API returned.
    assert_eq!(guard.counter("sched.row_by_row.loads"), 10);
    assert_eq!(guard.counter("sched.in_order.loads"), 5);
}

#[test]
fn golden_fig9_in_order_vs_out_of_order() {
    // Figs. 9/10: in-order scheduling needs 11 loads; the out-of-order
    // locality-aware scheduler covers the same pattern with 7.
    let guard = dota_trace::session("fig9");
    let ino = sched::in_order_schedule(&fig9());
    let ooo = sched::locality_aware_schedule(&fig9());
    assert_eq!(ino.total_loads(), 11);
    assert_eq!(ooo.total_loads(), 7);
    assert_eq!(guard.counter("sched.in_order.loads"), 11);
    assert_eq!(guard.counter("sched.ooo.loads"), 7);
    // Reloads = loads beyond the 6 distinct keys of the pattern.
    assert_eq!(guard.counter("sched.in_order.reloads"), 5);
    assert_eq!(guard.counter("sched.ooo.reloads"), 1);
}

#[test]
fn counters_disabled_outside_sessions() {
    assert!(!dota_trace::enabled());
    let _ = sched::locality_aware_schedule(&fig9());
    let guard = dota_trace::session("empty");
    assert_eq!(guard.counter("sched.ooo.loads"), 0);
}

/// One deterministic end-to-end workload: tiny model + quantized detector
/// inference followed by a cycle-simulator replay of its trace. Returns
/// the complete counter snapshot of the run.
fn tiny_workload_counters() -> BTreeMap<String, u64> {
    use dota_accel::{AccelConfig, Accelerator};
    let guard = dota_trace::session("tiny-workload");
    let mut params = dota_autograd::ParamSet::new();
    let model = dota_transformer::Model::init(
        dota_transformer::TransformerConfig::tiny(16, 8, 2),
        &mut params,
        11,
    );
    let hook = dota_detector::DotaHook::init(
        dota_detector::DetectorConfig::new(0.25),
        model.config(),
        &mut params,
    );
    let ids = vec![1usize, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3, 4, 5, 6, 7, 0];
    let trace = model.infer(&params, &ids, &hook.inference(&params));
    let _ = Accelerator::new(AccelConfig::default()).simulate_trace(model.config(), &trace);
    guard.counters()
}

#[test]
fn counters_identical_across_thread_counts() {
    // Every counter is a u64 sum of per-item contributions, and u64
    // addition is commutative and associative — so totals are bitwise
    // identical no matter how `dota-parallel` partitions the work. The
    // same workload also backs `counters_baseline --check`, which compares
    // the serial and `--features parallel` builds across processes.
    // Literal name of `dota_parallel::THREADS_ENV` — the pool crate is an
    // optional dependency, absent from the serial build this test must
    // also pass under.
    const THREADS_ENV: &str = "DOTA_THREADS";
    let prev = std::env::var(THREADS_ENV).ok();
    let mut snapshots = Vec::new();
    for threads in ["1", "4", "8"] {
        std::env::set_var(THREADS_ENV, threads);
        snapshots.push((threads, tiny_workload_counters()));
    }
    match prev {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
    let (_, first) = &snapshots[0];
    assert!(!first.is_empty());
    for (threads, snap) in &snapshots[1..] {
        assert_eq!(
            snap, first,
            "counters drifted between DOTA_THREADS=1 and DOTA_THREADS={threads}"
        );
    }
    // Sanity: the workload exercised detection, attention and the replay.
    assert_eq!(first["attn.heads"], 4);
    assert_eq!(first["detector.selections"], 4);
    assert_eq!(first["attn.connections.total"], 4 * 16 * 16);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_selections() -> impl Strategy<Value = Vec<Vec<u32>>> {
        proptest::collection::vec(
            proptest::collection::btree_set(0u32..16, 0..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            1..5,
        )
    }

    proptest! {
        /// The counter view of scheduler dominance: the out-of-order
        /// scheduler never *issues* (counter, not return value) more key
        /// loads than in-order, which never issues more than row-by-row.
        #[test]
        fn ooo_counter_never_exceeds_in_order(sel in arb_selections()) {
            let guard = dota_trace::session("prop-dominance");
            let _ = sched::row_by_row_loads(&sel);
            let _ = sched::in_order_schedule(&sel);
            let _ = sched::locality_aware_schedule(&sel);
            let ooo = guard.counter("sched.ooo.loads");
            let ino = guard.counter("sched.in_order.loads");
            let rbr = guard.counter("sched.row_by_row.loads");
            prop_assert!(ooo <= ino, "ooo {ooo} > in-order {ino}");
            prop_assert!(ino <= rbr, "in-order {ino} > row-by-row {rbr}");
        }

        /// Every detected (query, key) pair is assigned in exactly one
        /// round, and the assignment counter agrees with both the
        /// schedule structure and the input pattern size.
        #[test]
        fn every_detected_pair_assigned_exactly_once(sel in arb_selections()) {
            let guard = dota_trace::session("prop-exactly-once");
            let s = sched::locality_aware_schedule(&sel);
            let total: usize = sel.iter().map(Vec::len).sum();
            let mut seen = std::collections::HashSet::new();
            for round in &s.rounds {
                for &(q, k) in &round.assignments {
                    prop_assert!(seen.insert((q, k)), "pair ({q},{k}) assigned twice");
                    prop_assert!(sel[q].contains(&k), "pair ({q},{k}) never detected");
                }
            }
            prop_assert_eq!(seen.len(), total, "some detected pair was never assigned");
            prop_assert_eq!(guard.counter("sched.ooo.assignments"), total as u64);
            // Reload accounting: loads = distinct keys + reloads.
            let distinct: std::collections::HashSet<u32> =
                sel.iter().flatten().copied().collect();
            prop_assert_eq!(
                guard.counter("sched.ooo.loads"),
                distinct.len() as u64 + guard.counter("sched.ooo.reloads")
            );
        }
    }
}
