//! End-to-end CLI profiling tests: `--profile` must produce a
//! well-formed `.folded` flamegraph file covering the instrumented
//! layers (GEMM, attention, detector), a parseable `profile.json`, and
//! `dota analyze` reports must be diff-clean across thread counts —
//! while profiling must leave the measured outputs byte-identical.

use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::Command;

fn as_str(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

fn as_array(v: &Value) -> &[Value] {
    match v {
        Value::Array(xs) => xs,
        other => panic!("expected array, got {other:?}"),
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dota_cli_prof_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_dota(args: &[&str], envs: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dota"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("run dota");
    assert!(
        out.status.success(),
        "dota {args:?} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Every `.folded` line must be `frame(;frame)* <count>` with non-empty
/// frames and a positive sample count, and the lines must be sorted.
fn check_folded(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).expect("read .folded");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "empty .folded file");
    let mut stacks = Vec::new();
    for line in &lines {
        let (stack, count) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed folded line {line:?}"));
        let count: u64 = count
            .parse()
            .unwrap_or_else(|e| panic!("bad sample count in {line:?}: {e}"));
        assert!(count > 0, "zero sample count in {line:?}");
        assert!(!stack.is_empty(), "empty stack in {line:?}");
        for frame in stack.split(';') {
            assert!(!frame.is_empty(), "empty frame in {line:?}");
        }
        stacks.push(stack.to_owned());
    }
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted, "folded lines are not sorted");
    stacks
}

#[test]
fn infer_profile_covers_instrumented_layers() {
    let dir = scratch("infer");
    run_dota(
        &[
            "infer",
            "qa",
            "--seq",
            "16",
            "--profile",
            dir.to_str().unwrap(),
        ],
        &[],
    );

    let stacks = check_folded(&dir.join("profile.folded"));
    // The flamegraph must span at least the three instrumented layers:
    // tensor GEMM, per-head attention, and the detector.
    for frame in ["gemm.matmul", "attn.head", "detector.select"] {
        assert!(
            stacks.iter().any(|s| s.split(';').any(|f| f == frame)),
            "frame {frame} missing from folded stacks: {stacks:?}"
        );
    }

    let text = std::fs::read_to_string(dir.join("profile.json")).expect("read profile.json");
    let doc = serde_json::parse(&text).expect("profile.json is valid JSON");
    assert_eq!(doc.get("schema").map(as_str), Some("dota-prof-v1"));
    let spans = as_array(doc.get("spans").expect("spans field"));
    assert!(!spans.is_empty(), "profile.json has no spans");
    for span in spans {
        assert!(span.get("path").is_some() && span.get("self_ms").is_some());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyze_reports_are_diff_clean_across_thread_counts() {
    let dir = scratch("analyze");
    let (a, b) = (dir.join("a.json"), dir.join("b.json"));
    run_dota(
        &["analyze", "qa", "--seq", "16", "--out", a.to_str().unwrap()],
        &[],
    );
    run_dota(
        &["analyze", "qa", "--seq", "16", "--out", b.to_str().unwrap()],
        &[("DOTA_THREADS", "8")],
    );

    let doc = serde_json::parse(&std::fs::read_to_string(&a).unwrap()).expect("analyze JSON");
    assert_eq!(doc.get("schema").map(as_str), Some("dota-analyze-v1"));
    for section in ["cycles", "compute", "roofline", "host"] {
        assert!(doc.get(section).is_some(), "missing section {section}");
    }

    // The host section is volatile (wall clock, hotspots); everything
    // else must diff clean between the serial and 8-thread runs.
    let out = run_dota(
        &["report", "diff", a.to_str().unwrap(), b.to_str().unwrap()],
        &[],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no regressions"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profiling_leaves_counter_outputs_byte_identical() {
    let dir = scratch("identity");
    let (plain, profiled) = (dir.join("plain.json"), dir.join("profiled.json"));
    run_dota(
        &[
            "infer",
            "qa",
            "--seq",
            "16",
            "--counters",
            plain.to_str().unwrap(),
        ],
        &[],
    );
    run_dota(
        &[
            "infer",
            "qa",
            "--seq",
            "16",
            "--counters",
            profiled.to_str().unwrap(),
            "--profile",
            dir.join("prof").to_str().unwrap(),
        ],
        &[],
    );
    let a = std::fs::read(&plain).expect("read plain counters");
    let b = std::fs::read(&profiled).expect("read profiled counters");
    assert_eq!(a, b, "profiling changed the counters output");

    let _ = std::fs::remove_dir_all(&dir);
}
