//! Live-telemetry integration tests: the `/metrics` endpoint, the flight
//! recorder, and `dota top`, driven end to end through the CLI.
//!
//! The contracts under test:
//!
//! 1. **Flight dumps are byte-deterministic**: the same bench command
//!    writes the same `flight.json` whatever `DOTA_THREADS` says (CI
//!    additionally `cmp`s serial vs `--features parallel` builds) —
//!    events are stamped with simulated cycles and a monotone sequence,
//!    never wall time.
//! 2. **The endpoint speaks strict Prometheus text exposition**: every
//!    scrape of a live run passes the format validator, and `dota top`
//!    renders it.
//! 3. **SIGTERM is a clean exit**: the server drains, the process exits
//!    zero, and a postmortem `flight.json` lands on disk.

use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dota_telemetry_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The same serve command dumps byte-identical flight recordings across
/// thread counts: the ring is fed from the serial scheduler loop, so
/// `DOTA_THREADS` (which only fans out per-slot decode math) cannot
/// reorder or drop events.
#[test]
fn cli_flight_dump_byte_identical_across_thread_counts() {
    let dir = scratch_dir("flight");
    let mut dumps = Vec::new();
    for threads in ["1", "8"] {
        let path = dir.join(format!("flight_t{threads}.json"));
        let out = Command::new(env!("CARGO_BIN_EXE_dota"))
            .args([
                "serve",
                "--bench",
                "--requests",
                "40",
                "--loads",
                "6.0",
                "--shed",
                "slo",
                "--flight-out",
            ])
            .arg(&path)
            .env("DOTA_THREADS", threads)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        dumps.push(std::fs::read(&path).unwrap());
    }
    assert_eq!(
        dumps[0], dumps[1],
        "flight dump bytes changed with DOTA_THREADS"
    );
    // The dump is canonical JSON carrying the event stream.
    let text = String::from_utf8(dumps[0].clone()).unwrap();
    assert!(text.starts_with("{\n  \"version\": 1,"), "{text}");
    assert!(text.contains("\"kind\":\"admit\""), "{text}");
    assert!(text.contains("\"kind\":\"terminal\""), "{text}");
    assert!(text.ends_with("}\n"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A live `dota serve --metrics-addr` run: the bound address is announced
/// on stderr (port 0 picks a free one), every scrape passes the strict
/// exposition validator, `dota top --once` renders the dashboard from it,
/// and SIGTERM shuts the whole thing down cleanly with a postmortem
/// flight dump.
#[test]
fn cli_metrics_endpoint_serves_valid_exposition_until_sigterm() {
    let dir = scratch_dir("endpoint");
    let mut child = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args([
            "serve",
            "--bench",
            "--requests",
            "60",
            "--loads",
            "4.0",
            "--shed",
            "slo",
            "--metrics-addr",
            "127.0.0.1:0",
        ])
        .current_dir(&dir)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut reader = BufReader::new(child.stderr.take().unwrap());
    let mut addr = None;
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap() > 0 {
        if let Some(rest) = line.trim().strip_prefix("[metrics listening on http://") {
            addr = Some(rest.trim_end_matches("/metrics]").to_owned());
            break;
        }
        line.clear();
    }
    let addr = addr.expect("serve never announced its metrics address");
    // Keep the pipe drained so the child can never block on stderr.
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
        rest
    });

    // Two scrapes (the run is live or freshly complete for both): each
    // must pass the strict format validator and carry the serve gauges.
    for _ in 0..2 {
        let body = dota_telemetry::http::get(addr.as_str(), "/metrics").unwrap();
        dota_telemetry::exposition::validate(&body)
            .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{body}"));
        assert!(body.contains("dota_serve_queue_depth"), "{body}");
        assert!(body.contains("dota_serve_occupancy"), "{body}");
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    // The dashboard renders from the same endpoint.
    let top = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["top", "--addr", &addr, "--once"])
        .output()
        .unwrap();
    assert!(
        top.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&top.stderr)
    );
    let view = String::from_utf8_lossy(&top.stdout);
    assert!(view.contains("dota top —"), "{view}");
    assert!(view.contains("occupancy"), "{view}");
    assert!(view.contains("queue depth"), "{view}");

    // SIGTERM: graceful exit plus a postmortem flight dump in the CWD.
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(status.success(), "kill -TERM failed");
    let exit = child.wait().unwrap();
    let stderr_rest = drain.join().unwrap();
    assert!(
        exit.success(),
        "serve exited nonzero; stderr: {stderr_rest}"
    );
    let flight = dir.join("flight.json");
    assert!(
        flight.exists(),
        "no postmortem flight.json; stderr: {stderr_rest}"
    );
    let text = std::fs::read_to_string(&flight).unwrap();
    assert!(text.contains("\"version\": 1"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Requesting an unbindable metrics address is a typed CLI error, not a
/// panic or a silent fallback.
#[test]
fn cli_rejects_unbindable_metrics_addr() {
    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args([
            "serve",
            "--requests",
            "4",
            "--metrics-addr",
            "203.0.113.1:1", // TEST-NET address: bind must fail
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("binding metrics endpoint"),
        "stderr was: {stderr}"
    );
}

/// `serve --chaos` has no telemetry plane; combining them is a typed
/// error rather than a silently ignored flag.
#[test]
fn cli_rejects_telemetry_flags_under_chaos() {
    for flag in [
        ["--metrics-addr", "127.0.0.1:0"],
        ["--flight-out", "/tmp/unused_flight.json"],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_dota"))
            .args(["serve", "--chaos", "--requests", "4"])
            .args(flag)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{flag:?} was accepted under --chaos");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("no live telemetry plane"),
            "stderr for {flag:?}: {stderr}"
        );
    }
}
