//! Robustness integration tests: crash-resume training, campaign
//! determinism across thread counts, and CLI fault behavior (typed errors
//! with nonzero exit, never a panic).

use dota_core::campaign::{run_campaign, CampaignOptions};
use dota_core::checkpoint;
use dota_core::experiments::{build_model, TrainOptions};
use dota_core::watchdog::{train_dense_guarded, WatchdogOptions};
use dota_faults::FaultSite;
use std::path::PathBuf;
use std::process::Command;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dota_robust_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Interrupting a guarded run after any epoch and resuming from its
/// crash-safe checkpoint reproduces the uninterrupted run *exactly*
/// (tolerance 0): every epoch is an independent optimizer episode starting
/// from a bit-exact parameter state, so the resumed epochs replay the same
/// arithmetic. This is the documented contract of
/// `dota_core::watchdog` — any relaxation of it must loosen this test
/// deliberately.
#[test]
fn crash_resume_matches_uninterrupted_run_exactly() {
    let spec = dota_workloads::TaskSpec::tiny(dota_workloads::Benchmark::Text, 16, 11);
    let (train, _) = spec.generate_split(12, 2);
    let opts = TrainOptions {
        epochs: 4,
        ..Default::default()
    };

    // Uninterrupted reference run.
    let (model, mut full_params) = build_model(&spec, 11);
    let full = train_dense_guarded(
        &model,
        &mut full_params,
        &train,
        &opts,
        &WatchdogOptions::default(),
    )
    .unwrap();
    assert_eq!(full.losses.len(), 4);

    // Same run, "crashed" after epoch 2 — only the checkpoint survives.
    let dir = scratch_dir("resume");
    let ckpt = dir.join("guarded.json");
    let wd = WatchdogOptions {
        checkpoint_path: Some(ckpt.clone()),
        ..Default::default()
    };
    let (_, mut half_params) = build_model(&spec, 11);
    let first_half = train_dense_guarded(
        &model,
        &mut half_params,
        &train,
        &TrainOptions { epochs: 2, ..opts },
        &wd,
    )
    .unwrap();
    drop(half_params); // the crash: in-memory state is gone

    // Resume from the checkpoint and run the remaining epochs.
    let mut resumed_params = checkpoint::load_params(&ckpt).unwrap();
    let second_half = train_dense_guarded(
        &model,
        &mut resumed_params,
        &train,
        &TrainOptions { epochs: 2, ..opts },
        &wd,
    )
    .unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let stitched: Vec<f32> = first_half
        .losses
        .iter()
        .chain(second_half.losses.iter())
        .copied()
        .collect();
    assert_eq!(
        stitched.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        full.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        "resumed losses diverged from the uninterrupted run"
    );
    for (a, b) in full_params.ids().zip(resumed_params.ids()) {
        assert_eq!(full_params.value(a), resumed_params.value(b));
    }
}

/// The campaign report is a pure function of the seed: fault decisions
/// hash `(seed, site, coordinates)` rather than consuming a shared RNG
/// stream, so the serialized report is byte-identical whatever
/// `DOTA_THREADS` says (and across serial/`parallel` builds, which CI
/// pins by diffing artifacts from both).
#[test]
fn campaign_report_is_byte_identical_across_thread_counts() {
    let opts = CampaignOptions {
        seed: 13,
        sites: FaultSite::ALL.to_vec(),
        rates: vec![0.0, 0.05, 1.0],
        seq_len: 16,
    };
    let prev = std::env::var("DOTA_THREADS").ok();
    std::env::set_var("DOTA_THREADS", "1");
    let serial = run_campaign(&opts).to_json();
    std::env::set_var("DOTA_THREADS", "8");
    let threaded = run_campaign(&opts).to_json();
    match prev {
        Some(v) => std::env::set_var("DOTA_THREADS", v),
        None => std::env::remove_var("DOTA_THREADS"),
    }
    assert_eq!(serial, threaded, "campaign report depends on thread count");
}

/// `dota infer --faults attn.input=1` must surface the injected NaN as a
/// one-line typed error with a nonzero exit — not a panic, not a zero
/// exit.
#[test]
fn cli_unabsorbable_fault_is_typed_error_with_nonzero_exit() {
    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["infer", "text", "--faults", "attn.input=1"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "expected nonzero exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error: inference failed"),
        "stderr was: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "fault surfaced as a panic: {stderr}"
    );
}

/// The same command with an absorbable fault (detector corruption) must
/// succeed, falling back to dense attention and reporting the counters.
#[test]
fn cli_absorbable_fault_degrades_and_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["infer", "text", "--faults", "detector.corrupt=1"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr was: {stderr}");
    assert!(
        stderr.contains("fell back to dense") && stderr.contains("faults.fallback_dense"),
        "stderr was: {stderr}"
    );
}

/// `dota faults --out` writes a report that `dota report diff` accepts and
/// finds identical to a rerun with the same seed.
#[test]
fn cli_campaign_report_roundtrips_through_report_diff() {
    let dir = scratch_dir("campaign");
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    for path in [&a, &b] {
        let out = Command::new(env!("CARGO_BIN_EXE_dota"))
            .args([
                "faults",
                "--seed",
                "3",
                "--sites",
                "sram.bitflip,detector.corrupt",
                "--rates",
                "0,1",
                "--out",
                &path.display().to_string(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "same-seed campaign reports differ"
    );
    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["report", "diff"])
        .args([a.display().to_string(), b.display().to_string()])
        .output()
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        out.status.success(),
        "report diff rejected the campaign report: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Malformed environment is rejected up front with a clear message.
#[test]
fn cli_rejects_malformed_dota_threads() {
    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["table2"])
        .env("DOTA_THREADS", "many")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("DOTA_THREADS"), "stderr was: {stderr}");
}

/// An empty `DOTA_PROF` (profile output directory) is caught by the
/// environment validation, not silently ignored.
#[test]
fn cli_rejects_empty_dota_prof() {
    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["table2"])
        .env("DOTA_PROF", "")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("DOTA_PROF"), "stderr was: {stderr}");
}

/// Malformed serving knobs are rejected up front for *every* command, like
/// the observability variables above: a typo'd batch size silently falling
/// back to the default would make load tests incomparable.
#[test]
fn cli_rejects_malformed_dota_serve_env() {
    for (name, bad) in [
        ("DOTA_SERVE_BATCH", "0"),
        ("DOTA_SERVE_BATCH", "many"),
        ("DOTA_SERVE_DEADLINE", "-50"),
        ("DOTA_SERVE_DEADLINE", "soon"),
        ("DOTA_SERVE_SHED", "drop"),
        ("DOTA_SERVE_SHED", ""),
        ("DOTA_SERVE_TIMELINE", ""),
        ("DOTA_SERVE_TIMELINE", "   "),
        ("DOTA_SERVE_CHAOS", "lots"),
        ("DOTA_SERVE_CHAOS", "0.5,1.5"),
        ("DOTA_SERVE_CHAOS", "-0.1"),
        ("DOTA_SERVE_RETRY_CAP", "many"),
        ("DOTA_SERVE_RETRY_CAP", "-1"),
        ("DOTA_SERVE_RETRY_BACKOFF", "0"),
        ("DOTA_SERVE_RETRY_BACKOFF", "fast"),
        ("DOTA_SERVE_METRICS_ADDR", ""),
        ("DOTA_SERVE_METRICS_ADDR", "localhost"),
        ("DOTA_SERVE_METRICS_ADDR", ":9184"),
        ("DOTA_SERVE_METRICS_ADDR", "127.0.0.1:port"),
        ("DOTA_SERVE_FLIGHT", ""),
        ("DOTA_SERVE_FLIGHT", "   "),
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_dota"))
            .args(["table2"])
            .env(name, bad)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{name}={bad} was accepted");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(name), "stderr for {name}={bad}: {stderr}");
    }
}

/// Well-formed serving knobs are honored: the configuration line `dota
/// serve` prints reflects `DOTA_SERVE_BATCH`, and an explicit flag wins
/// over the environment.
#[test]
fn cli_serve_env_knobs_apply_with_flag_precedence() {
    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["serve", "--requests", "8"])
        .env("DOTA_SERVE_BATCH", "3")
        .env("DOTA_SERVE_SHED", "queue")
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("capacity 3"), "stdout was: {stdout}");
    assert!(!stdout.contains("retention"), "stdout was: {stdout}");

    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args([
            "serve",
            "--requests",
            "8",
            "--capacity",
            "5",
            "--shed",
            "retention",
        ])
        .env("DOTA_SERVE_BATCH", "3")
        .env("DOTA_SERVE_SHED", "queue")
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("capacity 5"), "stdout was: {stdout}");
    assert!(stdout.contains("retention"), "stdout was: {stdout}");
}

/// `DOTA_SERVE_TIMELINE` turns on timeline recording like `--timeline`,
/// and the flag's path wins when both name a destination.
#[test]
fn cli_serve_timeline_env_applies_with_flag_precedence() {
    let dir = std::env::temp_dir().join(format!("dota_tl_env_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let env_path = dir.join("from_env.json");
    let flag_path = dir.join("from_flag.json");

    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["serve", "--requests", "8"])
        .env("DOTA_SERVE_TIMELINE", &env_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(env_path.exists(), "env-named timeline was not written");

    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["serve", "--requests", "8", "--timeline"])
        .arg(&flag_path)
        .env("DOTA_SERVE_TIMELINE", dir.join("ignored.json"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(flag_path.exists(), "flag-named timeline was not written");
    assert!(
        !dir.join("ignored.json").exists(),
        "env path used despite an explicit --timeline flag"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `DOTA_SERVE_FLIGHT` turns on the flight recorder like `--flight-out`,
/// and the flag's path wins when both name a destination.
#[test]
fn cli_serve_flight_env_applies_with_flag_precedence() {
    let dir = std::env::temp_dir().join(format!("dota_fl_env_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let env_path = dir.join("from_env.json");
    let flag_path = dir.join("from_flag.json");

    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["serve", "--requests", "8"])
        .env("DOTA_SERVE_FLIGHT", &env_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(env_path.exists(), "env-named flight dump was not written");

    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["serve", "--requests", "8", "--flight-out"])
        .arg(&flag_path)
        .env("DOTA_SERVE_FLIGHT", dir.join("ignored.json"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(flag_path.exists(), "flag-named flight dump was not written");
    assert!(
        !dir.join("ignored.json").exists(),
        "env path used despite an explicit --flight-out flag"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `--shed slo` is a first-class policy everywhere a shed is named: the
/// CLI accepts it (flag and environment) and the run reports `slo` cells.
#[test]
fn cli_accepts_slo_shed_policy() {
    for setup in [&["--shed", "slo"][..], &[][..]] {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_dota"));
        cmd.args(["serve", "--requests", "8"]).args(setup);
        if setup.is_empty() {
            cmd.env("DOTA_SERVE_SHED", "slo");
        }
        let out = cmd.output().unwrap();
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout.contains("slo"), "stdout was: {stdout}");
    }
}

/// Chaos knobs honor flag-over-environment precedence: the campaign's
/// printed configuration reflects `DOTA_SERVE_CHAOS` and
/// `DOTA_SERVE_RETRY_CAP`, and explicit flags win over both.
#[test]
fn cli_chaos_env_knobs_apply_with_flag_precedence() {
    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["serve", "--chaos", "--requests", "6", "--loads", "1.0"])
        .env("DOTA_SERVE_CHAOS", "0,0.5")
        .env("DOTA_SERVE_RETRY_CAP", "5")
        .env("DOTA_SERVE_RETRY_BACKOFF", "4000")
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("2 rate(s)"), "stdout was: {stdout}");
    assert!(stdout.contains("retry cap 5"), "stdout was: {stdout}");
    assert!(
        stdout.contains("backoff 4000 cycles"),
        "stdout was: {stdout}"
    );

    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["serve", "--chaos", "--requests", "6", "--loads", "1.0"])
        .args([
            "--chaos-rates",
            "0",
            "--retry-cap",
            "1",
            "--retry-backoff",
            "100",
        ])
        .env("DOTA_SERVE_CHAOS", "0,0.5")
        .env("DOTA_SERVE_RETRY_CAP", "5")
        .env("DOTA_SERVE_RETRY_BACKOFF", "4000")
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("1 rate(s)"), "stdout was: {stdout}");
    assert!(stdout.contains("retry cap 1"), "stdout was: {stdout}");
    assert!(
        stdout.contains("backoff 100 cycles"),
        "stdout was: {stdout}"
    );
}

/// `report diff --allow-added` tolerates keys that exist only in run B
/// (schema additions) but still fails on vanished ones: additions are a
/// distinct class, not silently-accepted regressions.
#[test]
fn cli_report_diff_allow_added_tolerates_additions_not_removals() {
    let dir = scratch_dir("allow_added");
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(&old, "{\"x\":1}\n").unwrap();
    std::fs::write(&new, "{\"x\":1,\"y\":2}\n").unwrap();

    let strict = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["report", "diff"])
        .args([old.display().to_string(), new.display().to_string()])
        .output()
        .unwrap();
    assert!(
        !strict.status.success(),
        "strict diff accepted an added key"
    );
    assert!(
        String::from_utf8_lossy(&strict.stdout).contains("ADDED"),
        "stdout: {}",
        String::from_utf8_lossy(&strict.stdout)
    );

    let tolerant = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["report", "diff", "--allow-added"])
        .args([old.display().to_string(), new.display().to_string()])
        .output()
        .unwrap();
    assert!(
        tolerant.status.success(),
        "--allow-added still failed: {}\n{}",
        String::from_utf8_lossy(&tolerant.stdout),
        String::from_utf8_lossy(&tolerant.stderr)
    );

    // Vanished keys stay fatal either way: run the pair in reverse.
    let vanished = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["report", "diff", "--allow-added"])
        .args([new.display().to_string(), old.display().to_string()])
        .output()
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        !vanished.status.success(),
        "--allow-added tolerated a vanished key"
    );
}
