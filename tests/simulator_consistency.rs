//! Cross-crate consistency checks on the accelerator simulator: its cycle
//! counts must track the analytic FLOPs model, its scheduler must respect
//! the replayed masks, and scaling knobs must behave monotonically.

use dota_accel::synth::SelectionProfile;
use dota_accel::{AccelConfig, Accelerator};
use dota_quant::Precision;
use dota_transformer::flops;
use dota_transformer::TransformerConfig;

#[test]
fn cycles_track_flops_across_sequence_lengths() {
    // Compute-bound stages: cycle ratios between sequence lengths should
    // roughly match FLOP ratios from the analytic model.
    let cfg = TransformerConfig::lra(4096, 2);
    let acc = Accelerator::new(AccelConfig::default());
    let prof = SelectionProfile::default();

    let flops_ratio = flops::dense_layer_flops(&cfg, 2048).total() as f64
        / flops::dense_layer_flops(&cfg, 512).total() as f64;
    let rep_small = acc.simulate_shape(&cfg, 512, 1.0, 0.0, &prof);
    let rep_large = acc.simulate_shape(&cfg, 2048, 1.0, 0.0, &prof);
    let cycle_ratio = rep_large.cycles.total() as f64 / rep_small.cycles.total() as f64;
    assert!(
        (cycle_ratio / flops_ratio - 1.0).abs() < 0.5,
        "cycle ratio {cycle_ratio} vs flops ratio {flops_ratio}"
    );
}

#[test]
fn detection_precision_affects_detection_cycles_only() {
    let cfg = TransformerConfig::lra(2048, 2);
    let prof = SelectionProfile::default();
    let a = AccelConfig {
        detect_precision: Precision::Int8,
        ..Default::default()
    };
    let b = AccelConfig {
        detect_precision: Precision::Int2,
        ..Default::default()
    };
    let rep8 = Accelerator::new(a).simulate_shape(&cfg, 1024, 0.1, 0.2, &prof);
    let rep2 = Accelerator::new(b).simulate_shape(&cfg, 1024, 0.1, 0.2, &prof);
    assert!(rep2.cycles.detection < rep8.cycles.detection);
    assert_eq!(rep2.cycles.linear, rep8.cycles.linear);
    assert_eq!(rep2.cycles.ffn, rep8.cycles.ffn);
    assert_eq!(rep2.cycles.attention, rep8.cycles.attention);
    // Energy also drops quadratically with precision width.
    assert!(rep2.energy.rmmu_pj < rep8.energy.rmmu_pj);
}

#[test]
fn token_parallelism_sweep_reduces_loads_with_diminishing_returns() {
    // Fig. 15's left axis: higher parallelism reduces K/V memory access,
    // but with diminishing returns.
    let cfg = TransformerConfig::lra(1024, 2);
    let prof = SelectionProfile::default();
    let loads_at = |t: usize| {
        let c = AccelConfig {
            token_parallelism: t,
            ..Default::default()
        };
        Accelerator::new(c)
            .simulate_shape(&cfg, 1024, 0.1, 0.2, &prof)
            .key_loads
    };
    let l1 = loads_at(1);
    let l2 = loads_at(2);
    let l4 = loads_at(4);
    let l6 = loads_at(6);
    assert!(l2 < l1, "{l2} !< {l1}");
    assert!(l4 < l2, "{l4} !< {l2}");
    assert!(l6 <= l4, "{l6} > {l4}");
    let gain_12 = l1 as f64 / l2 as f64;
    let gain_46 = l4 as f64 / l6 as f64;
    assert!(
        gain_12 > gain_46,
        "no diminishing returns: {gain_12} vs {gain_46}"
    );
}

#[test]
fn trace_replay_consistent_with_shape_simulation() {
    // A dense trace of the tiny model should land near the analytic shape
    // simulation of the same configuration.
    use dota_autograd::ParamSet;
    use dota_transformer::Model;

    let tiny = TransformerConfig::tiny(32, 8, 2);
    let mut params = ParamSet::new();
    let model = Model::init(tiny.clone(), &mut params, 5);
    let ids: Vec<usize> = (0..32).map(|i| i % 8).collect();
    let trace = model.infer(&params, &ids, &dota_transformer::NoHook);

    let acc = Accelerator::new(AccelConfig::default());
    let replay = acc.simulate_trace(&tiny, &trace);
    let shape = acc.simulate_shape(&tiny, 32, 1.0, 0.0, &SelectionProfile::uniform());

    let ratio = replay.cycles.total() as f64 / shape.cycles.total() as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "replay {} vs shape {} (ratio {ratio})",
        replay.cycles.total(),
        shape.cycles.total()
    );
}

#[test]
fn energy_breakdown_components_all_accounted() {
    let cfg = TransformerConfig::lra(2048, 2);
    let acc = Accelerator::new(AccelConfig::default());
    let rep = acc.simulate_shape(&cfg, 1024, 0.1, 0.2, &SelectionProfile::default());
    let e = &rep.energy;
    for (name, v) in [
        ("rmmu", e.rmmu_pj),
        ("mfu", e.mfu_pj),
        ("scheduler", e.scheduler_pj),
        ("accumulator", e.accumulator_pj),
        ("sram", e.sram_pj),
        ("dram", e.dram_pj),
        ("leakage", e.leakage_pj),
    ] {
        assert!(v > 0.0, "{name} energy missing");
        assert!(v < e.total_pj(), "{name} exceeds total");
    }
}

#[test]
fn dense_run_skips_detection_entirely() {
    let cfg = TransformerConfig::lra(2048, 2);
    let acc = Accelerator::new(AccelConfig::default());
    let rep = acc.simulate_shape(&cfg, 512, 1.0, 0.0, &SelectionProfile::default());
    assert_eq!(rep.cycles.detection, 0);
    assert_eq!(rep.energy.scheduler_pj, 0.0);
}
