//! End-to-end integration: data generation → dense training → joint
//! adaptation → sparse inference → accelerator replay, across crates.

use dota_accel::{AccelConfig, Accelerator};
use dota_core::experiments::{BenchmarkRun, Method, TrainOptions};
use dota_detector::DetectorConfig;
use dota_workloads::Benchmark;

fn small_opts() -> TrainOptions {
    TrainOptions {
        epochs: 8,
        warmup_epochs: 2,
        ..Default::default()
    }
}

#[test]
fn text_pipeline_accuracy_and_replay() {
    let retention = 0.25;
    let run = BenchmarkRun::train(
        Benchmark::Text,
        24,
        60,
        30,
        DetectorConfig::new(retention),
        &small_opts(),
        101,
    )
    .expect("training failed");

    // Accuracy: DOTA close to dense, above random.
    let dense = run.evaluate(Method::Dense, 1.0, 1);
    let dota = run.evaluate(Method::Dota, retention, 1);
    let random = run.evaluate(Method::Random, retention, 1);
    assert!(dense.accuracy > 0.65, "dense {:?}", dense);
    assert!(
        dota.accuracy >= random.accuracy,
        "dota {dota:?} vs random {random:?}"
    );
    assert!(
        dota.accuracy >= dense.accuracy - 0.2,
        "dota {dota:?} vs dense {dense:?}"
    );

    // Replay the detected masks on the simulator.
    let sample = &run.test.samples()[0];
    let hook = run.hook.inference(&run.dota_params);
    let trace = run.model.infer(&run.dota_params, &sample.ids, &hook);
    assert!((trace.retention() - retention).abs() < 0.05);

    let accel = Accelerator::new(AccelConfig::default());
    let sparse_rep = accel.simulate_trace(run.model.config(), &trace);
    let dense_trace = run
        .model
        .infer(&run.dense_params, &sample.ids, &dota_transformer::NoHook);
    let dense_rep = accel.simulate_trace(run.model.config(), &dense_trace);

    // Sparse execution does strictly less attention work and fewer K/V loads.
    assert!(sparse_rep.cycles.attention <= dense_rep.cycles.attention);
    assert!(sparse_rep.key_loads < dense_rep.key_loads);
    assert!(sparse_rep.key_loads <= sparse_rep.key_loads_row_by_row);
}

#[test]
fn qa_pipeline_learns_lookup_task() {
    let run = BenchmarkRun::train(
        Benchmark::Qa,
        32,
        80,
        40,
        DetectorConfig::new(0.25),
        &TrainOptions {
            epochs: 12,
            ..small_opts()
        },
        7,
    )
    .expect("training failed");
    let dense = run.evaluate(Method::Dense, 1.0, 1);
    // 4-way classification: chance is 0.25.
    assert!(dense.accuracy > 0.4, "QA dense accuracy {:?}", dense);
    let dota = run.evaluate(Method::Dota, 0.25, 1);
    assert!(dota.accuracy > 0.3, "QA DOTA accuracy {:?}", dota);
}

#[test]
fn image_pipeline_beats_chance() {
    let run = BenchmarkRun::train(
        Benchmark::Image,
        24,
        80,
        40,
        DetectorConfig::new(0.25),
        &TrainOptions {
            epochs: 12,
            ..small_opts()
        },
        13,
    )
    .expect("training failed");
    let dense = run.evaluate(Method::Dense, 1.0, 1);
    assert!(dense.accuracy > 0.35, "Image dense accuracy {:?}", dense);
}

#[test]
fn lm_pipeline_reports_finite_perplexity() {
    // LM needs the streaming regime: many samples, few passes, or the
    // model memorizes the random filler tokens instead of learning the
    // planted retrieval edge.
    let run = BenchmarkRun::train(
        Benchmark::Lm,
        24,
        400,
        20,
        DetectorConfig::new(0.5),
        &TrainOptions {
            epochs: 4,
            warmup_epochs: 1,
            ..Default::default()
        },
        29,
    )
    .expect("training failed");
    let dense = run.evaluate(Method::Dense, 1.0, 1);
    let dota = run.evaluate(Method::Dota, 0.5, 1);
    let dense_ppl = dense.perplexity.expect("lm reports ppl");
    let dota_ppl = dota.perplexity.expect("lm reports ppl");
    assert!(dense_ppl.is_finite() && dense_ppl > 1.0);
    assert!(dota_ppl.is_finite() && dota_ppl > 1.0);
    // Trained model approaches the task's irreducible entropy (uniform
    // over the ~10 filler symbols, ppl ≈ 10) — far below an untrained
    // model's ppl (vocab size, 24).
    assert!(
        dense_ppl < 14.0,
        "dense ppl {dense_ppl} not near irreducible entropy"
    );
}
