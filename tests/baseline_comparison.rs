//! Integration tests of the comparison pipeline: the relative ordering the
//! paper reports (DOTA ≻ ELSA ≻ GPU on speed; DOTA ≻ training-free
//! approximations on detection quality) must hold in this reproduction.

use dota_core::presets::{self, OperatingPoint};
use dota_core::DotaSystem;
use dota_detector::metrics::detection_quality;
use dota_detector::{a3::A3Hook, elsa::ElsaHook, DetectorConfig, DotaHook};
use dota_workloads::Benchmark;

#[test]
fn speedup_ordering_matches_paper() {
    let sys = DotaSystem::paper_default();
    for b in Benchmark::ALL {
        let c = sys.speedup_row(b, OperatingPoint::Conservative);
        // DOTA-C beats the GPU on attention by a large factor and
        // end-to-end by a smaller one; upper bound caps end-to-end.
        assert!(c.attention_vs_gpu > c.end_to_end_vs_gpu, "{b:?}");
        assert!(c.end_to_end_vs_gpu > 1.0, "{b:?}");
        assert!(c.end_to_end_vs_gpu <= c.upper_bound_vs_gpu, "{b:?}");
        assert!(c.attention_vs_elsa > 1.0, "{b:?}");
    }
}

#[test]
fn longer_sequences_amplify_dota_advantage() {
    // The paper's scalability claim: end-to-end speedup grows with
    // sequence length (QA at 384 gains least; Retrieval at 4K most).
    let sys = DotaSystem::paper_default();
    let qa = sys.speedup_row(Benchmark::Qa, OperatingPoint::Conservative);
    let retrieval = sys.speedup_row(Benchmark::Retrieval, OperatingPoint::Conservative);
    assert!(
        retrieval.end_to_end_vs_gpu > qa.end_to_end_vs_gpu,
        "retrieval {} should beat QA {}",
        retrieval.end_to_end_vs_gpu,
        qa.end_to_end_vs_gpu
    );
}

#[test]
fn energy_rows_all_favor_dota() {
    let sys = DotaSystem::paper_default();
    for b in Benchmark::ALL {
        for p in [OperatingPoint::Conservative, OperatingPoint::Aggressive] {
            let row = sys.energy_row(b, p);
            assert!(row.vs_gpu > 10.0, "{b:?} {p:?}: {}", row.vs_gpu);
        }
    }
    // Aggressive at least as efficient as conservative.
    for b in Benchmark::ALL {
        let c = sys.energy_row(b, OperatingPoint::Conservative);
        let a = sys.energy_row(b, OperatingPoint::Aggressive);
        assert!(
            a.vs_gpu >= c.vs_gpu * 0.95,
            "{b:?}: A {} vs C {}",
            a.vs_gpu,
            c.vs_gpu
        );
    }
}

#[test]
fn dota_detection_beats_training_free_baselines() {
    // On a trained model, the (even untrained) low-rank detector with the
    // learned-friendly initialization should rank at least as well as A3's
    // truncated-dimension estimate at equal retention; after joint training
    // it must beat both ELSA and A3 (shown here on recall of oracle top-k).
    use dota_core::experiments::{self, TrainOptions};
    use dota_workloads::TaskSpec;

    let spec = TaskSpec::tiny(Benchmark::Text, 24, 13);
    let (train, test) = spec.generate_split(60, 10);
    let (model, mut params) = experiments::build_model(&spec, 13);
    experiments::train_dense(
        &model,
        &mut params,
        &train,
        &TrainOptions {
            epochs: 8,
            ..Default::default()
        },
    );

    let retention = 0.25;
    let k = DetectorConfig::new(retention).keys_per_row(24);
    let ids = &test.samples()[0].ids;

    // The tiny test model has head_dim 16 in a d=32 residual stream —
    // proportionally far tighter than the paper's 64-of-1024 heads, so the
    // information budget that makes sigma = 0.2 sufficient at scale maps to
    // sigma = 1.0 here (rank 16, matched against ELSA's 32-bit hashes).
    let det_cfg = DetectorConfig::new(retention).with_sigma(1.0);
    let mut adapted = params.clone();
    let mut hook = DotaHook::init(det_cfg, model.config(), &mut adapted);
    experiments::train_joint(
        &model,
        &mut adapted,
        &mut hook,
        &train,
        &TrainOptions {
            epochs: 10,
            warmup_epochs: 10, // estimation pretraining only
            lr: 0.01,
            lambda: 1.0,
            ..Default::default()
        },
    )
    .expect("training failed");

    let dota = detection_quality(&model, &adapted, ids, &hook.inference_f32(&adapted), k).recall;
    let elsa_hook = ElsaHook::from_model(&model, &params, 32, retention, 3);
    let elsa = detection_quality(&model, &params, ids, &elsa_hook, k).recall;
    let random = detection_quality(
        &model,
        &params,
        ids,
        &dota_detector::oracle::RandomHook::new(retention, 3),
        k,
    )
    .recall;
    // A3's recall can be high — its cost problem is the sorting
    // preprocessing outside the accelerator (§6.2), which the hardware
    // comparison (not this recall test) captures. Sanity-check it runs.
    let a3_hook = A3Hook::from_model(&model, &params, 4, retention);
    let a3 = detection_quality(&model, &params, ids, &a3_hook, k).recall;
    assert!(
        a3 > random,
        "A3 recall {a3:.3} should beat random {random:.3}"
    );

    assert!(
        dota > elsa,
        "trained DOTA recall {dota:.3} should beat ELSA {elsa:.3}"
    );
    assert!(
        dota > random + 0.2,
        "trained DOTA recall {dota:.3} should clear random {random:.3}"
    );
}

#[test]
fn presets_cover_all_benchmarks_and_points() {
    for b in Benchmark::ALL {
        for p in OperatingPoint::ALL {
            let r = presets::retention(b, p);
            assert!(r > 0.0 && r <= 1.0);
        }
        let m = presets::paper_model(b);
        assert!(m.validate().is_ok());
    }
}
