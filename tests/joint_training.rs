//! Integration tests of the joint optimization mechanism (paper §3.2):
//! gradients flow through both the model and the detector, the estimation
//! loss actually improves detection quality, and model adaptation recovers
//! accuracy lost to omission.

use dota_autograd::ParamSet;
use dota_core::experiments::{self, TrainOptions};
use dota_detector::metrics::detection_quality;
use dota_detector::{DetectorConfig, DotaHook};
use dota_transformer::Model;
use dota_workloads::{Benchmark, TaskSpec};

/// Measures DOTA's detection recall (vs. oracle top-k) before and after
/// joint training: the learned detector must improve.
#[test]
fn joint_training_improves_detection_recall() {
    let spec = TaskSpec::tiny(Benchmark::Text, 24, 3);
    let (train, test) = spec.generate_split(60, 10);
    let (model, mut params) = experiments::build_model(&spec, 3);
    experiments::train_dense(
        &model,
        &mut params,
        &train,
        &TrainOptions {
            epochs: 6,
            ..Default::default()
        },
    );

    // Proportionate rank for the tiny head_dim (see DESIGN.md).
    let cfg = DetectorConfig::new(0.25).with_sigma(0.5);
    let mut adapted = params.clone();
    let mut hook = DotaHook::init(cfg.clone(), model.config(), &mut adapted);

    let keys_per_row = cfg.keys_per_row(24);
    let sample_ids: Vec<Vec<usize>> = test.iter().take(5).map(|s| s.ids.clone()).collect();
    let recall_of = |m: &Model, p: &ParamSet, h: &DotaHook| -> f64 {
        sample_ids
            .iter()
            .map(|ids| detection_quality(m, p, ids, &h.inference_f32(p), keys_per_row).recall)
            .sum::<f64>()
            / sample_ids.len() as f64
    };

    let before = recall_of(&model, &adapted, &hook);
    experiments::train_joint(
        &model,
        &mut adapted,
        &mut hook,
        &train,
        &TrainOptions {
            epochs: 10,
            warmup_epochs: 10, // estimation-only: isolates the L_MSE effect
            lr: 0.01,
            lambda: 1.0,
            ..Default::default()
        },
    )
    .expect("training failed");
    let after = recall_of(&model, &adapted, &hook);
    assert!(
        after > before + 0.05,
        "detection recall did not improve: {before:.3} -> {after:.3}"
    );
    // The detector should end up meaningfully better than chance
    // (chance recall ≈ retention = 0.25).
    assert!(after > 0.30, "post-training recall {after:.3}");
}

/// The λ knob (phase-2 joint adaptation): with λ = 0 the detector
/// parameters receive no MSE supervision at all (the mask is a value-level
/// decision, not a gradient path), while λ > 0 moves them toward lower
/// estimation error.
#[test]
fn lambda_controls_estimation_supervision() {
    let spec = TaskSpec::tiny(Benchmark::Text, 20, 5);
    let (train, _) = spec.generate_split(30, 5);
    let (model, params) = experiments::build_model(&spec, 5);

    let run = |lambda: f32| -> f32 {
        let mut p = params.clone();
        let mut hook = DotaHook::init(DetectorConfig::new(0.5), model.config(), &mut p);
        experiments::train_joint(
            &model,
            &mut p,
            &mut hook,
            &train,
            &TrainOptions {
                epochs: 4,
                warmup_epochs: 0, // phase 2 only: lambda is the sole MSE path
                lambda,
                ..Default::default()
            },
        )
        .expect("training failed");
        // Mean squared estimation error on one training sample.
        let ids = &train.samples()[0].ids;
        let xs = dota_detector::metrics::layer_inputs(&model, &p, ids);
        let det = hook.detector(0, 0);
        let layer = &model.params().layers[0];
        let hd = model.config().head_dim();
        let q = xs[0].matmul(p.value(layer.wq)).unwrap().slice_cols(0, hd);
        let k = xs[0].matmul(p.value(layer.wk)).unwrap().slice_cols(0, hd);
        let scale = 1.0 / (hd as f32).sqrt();
        let exact = q.matmul_nt(&k).unwrap().scale(scale);
        let est = det.estimated_scores_f32(&p, &xs[0]);
        dota_tensor::ops::mse(&exact, &est)
    };

    let with_mse = run(1.0);
    let without_mse = run(0.0);
    assert!(
        with_mse < without_mse,
        "lambda=1 estimation error {with_mse} should beat lambda=0 {without_mse}"
    );
}

/// Model adaptation (§3.2), the paper's central accuracy claim: aggressive
/// omission on an unadapted model collapses accuracy; joint fine-tuning
/// with masking on recovers it to near the dense baseline.
#[test]
fn adaptation_recovers_omission_loss() {
    let retention = 0.125;
    let spec = TaskSpec::tiny(Benchmark::Qa, 24, 9);
    let (train, test) = spec.generate_split(300, 80);

    // Individual seeds at this toy scale are wildly init-sensitive (a
    // sweep of seeds 1..=6 on this split puts the dense baseline anywhere
    // in 0.53–0.75 and the omission penalty in 0.18–0.54), so asserting
    // on any single seed means hand-picking one and breaking whenever an
    // unrelated change shifts the RNG stream. Averaging three seeds is
    // stable: any three consecutive seeds from that sweep give mean
    // accuracies of dense ≈ 0.62–0.70, unadapted ≈ 0.35–0.38 and adapted
    // ≈ 0.73–0.75. The tolerance bands below keep ≥ 0.09 margin to those
    // observed means.
    let mut acc = [0.0f64; 3]; // [dense, unadapted, adapted] sums
    const SEEDS: [u64; 3] = [1, 2, 3];
    for seed in SEEDS {
        let (model, mut dense_params) = experiments::build_model(&spec, seed);
        experiments::train_dense(
            &model,
            &mut dense_params,
            &train,
            &TrainOptions {
                epochs: 16,
                lr_warmup_steps: 450,
                ..Default::default()
            },
        );
        acc[0] +=
            experiments::eval_accuracy(&model, &dense_params, &test, &dota_transformer::NoHook);

        // Unadapted: dense weights + fresh detector, no joint training.
        let mut unadapted = dense_params.clone();
        let raw_hook = DotaHook::init(
            DetectorConfig::new(retention).with_sigma(0.5),
            model.config(),
            &mut unadapted,
        );
        acc[1] +=
            experiments::eval_accuracy(&model, &unadapted, &test, &raw_hook.inference(&unadapted));

        // Adapted: detector warm-up then joint fine-tuning with masking.
        let mut adapted = dense_params.clone();
        let mut hook = DotaHook::init(
            DetectorConfig::new(retention).with_sigma(0.5),
            model.config(),
            &mut adapted,
        );
        experiments::train_joint(
            &model,
            &mut adapted,
            &mut hook,
            &train,
            &TrainOptions {
                epochs: 10,
                warmup_epochs: 2,
                ..Default::default()
            },
        )
        .expect("training failed");
        acc[2] += experiments::eval_accuracy(&model, &adapted, &test, &hook.inference(&adapted));
    }
    let [acc_dense, acc_unadapted, acc_adapted] = acc.map(|a| a / SEEDS.len() as f64);

    // Chance accuracy on this 9-class task is ≈ 0.11; the dense baseline
    // must clear 0.5 on average for the omission gap to be meaningful.
    assert!(
        acc_dense > 0.5,
        "mean dense baseline too weak: {acc_dense:.3}"
    );
    assert!(
        acc_unadapted < acc_dense - 0.15,
        "omission should hurt the unadapted model: mean {acc_unadapted:.3} vs dense {acc_dense:.3}"
    );
    assert!(
        acc_adapted > acc_unadapted + 0.2,
        "adaptation did not recover: mean adapted {acc_adapted:.3} vs unadapted {acc_unadapted:.3}"
    );
    assert!(
        acc_adapted > acc_dense - 0.1,
        "adapted model too far below dense: mean {acc_adapted:.3} vs {acc_dense:.3}"
    );
}
