//! End-to-end CLI observability test: `dota infer --trace --counters` on a
//! tiny preset must emit a valid Chrome-trace JSON document (parseable,
//! well-nested events) and a counters file whose per-head detection totals
//! account for every attention connection.

use serde_json::Value;
use std::path::PathBuf;
use std::process::Command;

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::Int(i) => u64::try_from(*i).expect("negative count"),
        Value::UInt(u) => *u,
        Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
        other => panic!("expected unsigned integer, got {other:?}"),
    }
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::UInt(u) => *u as f64,
        Value::Float(f) => *f,
        other => panic!("expected number, got {other:?}"),
    }
}

fn as_str(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

fn as_array(v: &Value) -> &[Value] {
    match v {
        Value::Array(xs) => xs,
        other => panic!("expected array, got {other:?}"),
    }
}

#[test]
fn infer_writes_valid_trace_and_consistent_counters() {
    let seq = 16usize;
    let dir = std::env::temp_dir();
    let trace_path = dir.join(format!("dota_cli_trace_{}.json", std::process::id()));
    let counters_path = dir.join(format!("dota_cli_counters_{}.json", std::process::id()));

    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args([
            "infer",
            "qa",
            "--seq",
            &seq.to_string(),
            "--trace",
            trace_path.to_str().unwrap(),
            "--counters",
            counters_path.to_str().unwrap(),
        ])
        .output()
        .expect("run dota infer");
    assert!(
        out.status.success(),
        "dota infer failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    check_trace(&trace_path);
    check_counters(&counters_path, seq);

    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&counters_path);
}

/// The trace must parse as JSON and hold Chrome-trace shaped events whose
/// complete ("X") spans are well-nested per (pid, tid) track: any two
/// spans on a track are either disjoint or one contains the other.
fn check_trace(path: &PathBuf) {
    let text = std::fs::read_to_string(path).expect("read trace file");
    let doc = serde_json::parse(&text).expect("trace is valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").map(as_str),
        Some("ms"),
        "missing displayTimeUnit"
    );
    let events = as_array(doc.get("traceEvents").expect("traceEvents field"));
    assert!(!events.is_empty(), "trace contains no events");

    // Group complete events by track.
    let mut tracks: std::collections::BTreeMap<(u64, u64), Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    let mut complete = 0usize;
    let mut names = std::collections::BTreeSet::new();
    for ev in events {
        let ph = as_str(ev.get("ph").expect("event phase"));
        let name = as_str(ev.get("name").expect("event name"));
        assert!(!name.is_empty());
        match ph {
            "X" => {
                complete += 1;
                names.insert(name.to_owned());
                let pid = as_u64(ev.get("pid").expect("pid"));
                let tid = as_u64(ev.get("tid").expect("tid"));
                let ts = as_f64(ev.get("ts").expect("ts"));
                let dur = as_f64(ev.get("dur").expect("dur"));
                assert!(ts >= 0.0 && dur >= 0.0, "negative ts/dur");
                tracks.entry((pid, tid)).or_default().push((ts, ts + dur));
            }
            "M" => {} // metadata (process/thread names)
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(complete > 0, "no complete events in trace");

    // The dota-prof instrumentation mirrors its spans into the host
    // tracks of the Chrome trace; the layers it covers must be visible.
    for expected in ["gemm.matmul", "attn.head", "detector.select", "model.infer"] {
        assert!(
            names.contains(expected),
            "host span {expected} missing from trace; got {names:?}"
        );
    }

    for ((pid, tid), mut spans) in tracks {
        // Sort by start, longest first on ties, then sweep with a stack:
        // each span must fit inside the innermost open span that overlaps
        // it (or overlap nothing).
        spans.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        let mut stack: Vec<(f64, f64)> = Vec::new();
        for (start, end) in spans {
            while let Some(&(_, open_end)) = stack.last() {
                if open_end <= start {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(open_start, open_end)) = stack.last() {
                assert!(
                    end <= open_end,
                    "event [{start}, {end}) on track ({pid}, {tid}) straddles \
                     enclosing span [{open_start}, {open_end})"
                );
            }
            stack.push((start, end));
        }
    }
}

/// The counters file must parse and its per-head detection counters must
/// partition the full attention matrix: omitted + retained = seq² for
/// every (layer, head).
fn check_counters(path: &PathBuf, seq: usize) {
    let text = std::fs::read_to_string(path).expect("read counters file");
    let doc = serde_json::parse(&text).expect("counters are valid JSON");
    assert_eq!(doc.get("label").map(as_str), Some("infer"));
    let counters = doc.get("counters").expect("counters field");
    let entries = counters.as_object().expect("counters is an object");
    assert!(!entries.is_empty());

    let value = |k: &str| counters.get(k).map(as_u64);
    let heads = value("attn.heads").expect("attn.heads counter");
    assert!(heads > 0);

    let mut per_head_seen = 0u64;
    for (key, v) in entries {
        if let Some(rest) = key.strip_prefix("attn.") {
            // Per-head keys look like `attn.L<layer>.H<head>.retained`.
            if rest.starts_with('L') && rest.ends_with(".retained") {
                let omitted_key = format!("{}omitted", key.strip_suffix("retained").unwrap());
                let omitted =
                    value(&omitted_key).unwrap_or_else(|| panic!("missing counter {omitted_key}"));
                assert_eq!(
                    as_u64(v) + omitted,
                    (seq * seq) as u64,
                    "{key} + {omitted_key} must cover all {seq}x{seq} connections"
                );
                per_head_seen += 1;
            }
        }
    }
    assert_eq!(per_head_seen, heads, "one retained/omitted pair per head");

    // Whole-model totals agree with the per-head partition.
    let total = value("attn.connections.total").unwrap();
    let retained = value("attn.connections.retained").unwrap();
    let omitted = value("attn.connections.omitted").unwrap();
    assert_eq!(total, heads * (seq * seq) as u64);
    assert_eq!(retained + omitted, total);
}
