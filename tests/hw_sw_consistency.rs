//! Hardware/software consistency: the functional models of the hardware
//! datapaths must agree with the software reference implementations they
//! accelerate, and the calibrated-threshold hardware selection path must
//! track the software top-k path.

use dota_autograd::ParamSet;
use dota_detector::calibrate::{calibrate_thresholds, ThresholdHook};
use dota_detector::{DetectorConfig, DotaHook};
use dota_quant::attention::fx16_sparse_attention;
use dota_quant::rmmu::{RmmuArray, RmmuConfig};
use dota_quant::{Precision, Quantizer};
use dota_tensor::rng::SeededRng;
use dota_tensor::{ops, topk};
use dota_transformer::{Model, TransformerConfig};

/// The RMMU functional executor, the integer-GEMM reference and the f32
/// reference must form a consistent tower: functional == integer GEMM
/// exactly; integer GEMM ≈ f32 within quantization error.
#[test]
fn rmmu_functional_tower() {
    let mut rng = SeededRng::new(1);
    let a = rng.normal_matrix(12, 24, 1.0);
    let b = rng.normal_matrix(10, 24, 1.0);
    let f32_ref = a.matmul_nt(&b).unwrap();
    for p in [Precision::Int8, Precision::Int4] {
        let qa = Quantizer::symmetric(p).quantize(&a);
        let qb = Quantizer::symmetric(p).quantize(&b);
        let int_ref = qa.matmul_nt_dequant(&qb).unwrap();
        let mut array = RmmuArray::new(RmmuConfig::uniform(p));
        let functional = array.matmul_nt(p, &qa, &qb).unwrap();
        assert!(
            functional.approx_eq(&int_ref, 1e-6),
            "{p}: functional != integer GEMM"
        );
        // Quantization error bound: scales with step sizes and inner dim.
        let bound = (qa.scale() + qb.scale()) * 24.0;
        assert!(
            int_ref.sub(&f32_ref).unwrap().abs_max() < bound,
            "{p}: integer GEMM drifted past the quantization bound"
        );
    }
}

/// The FX16 attention datapath must track the f32 sparse-attention kernel,
/// which itself must match masked-dense attention (transitively checked in
/// unit tests; here the full chain runs on trace-like operands).
#[test]
fn fx16_attention_chain() {
    let mut rng = SeededRng::new(2);
    let n = 24;
    let hd = 16;
    let q = rng.normal_matrix(n, hd, 1.0);
    let k = rng.normal_matrix(n, hd, 1.0);
    let v = rng.normal_matrix(n, hd, 1.0);
    let scale = 1.0 / (hd as f32).sqrt();
    let scores = q.matmul_nt(&k).unwrap().scale(scale);
    let sel: Vec<Vec<u32>> = topk::top_k_rows(&scores, 6)
        .into_iter()
        .map(|r| r.into_iter().map(|i| i as u32).collect())
        .collect();
    let f32_out = ops::sparse_attention(&q, &k, &v, &sel, scale);
    let fx_out = fx16_sparse_attention(&q, &k, &v, &sel, scale);
    let drift = f32_out.sub(&fx_out).unwrap().abs_max();
    assert!(drift < 0.05, "fx16 drift {drift}");
}

/// The comparator-style threshold selection (hardware Detector) must agree
/// with the software balanced top-k selection on most connections when the
/// threshold is calibrated to the same retention.
#[test]
fn threshold_hardware_path_tracks_topk() {
    let mut params = ParamSet::new();
    let model = Model::init(TransformerConfig::tiny(24, 12, 2), &mut params, 7);
    let retention = 0.25;
    let hook = DotaHook::init(
        DetectorConfig::new(retention).with_sigma(0.5),
        model.config(),
        &mut params,
    );
    let validation: Vec<Vec<usize>> = (0..4)
        .map(|s| (0..24).map(|i| (i * 5 + s) % 12).collect())
        .collect();
    let table = calibrate_thresholds(&model, &params, &hook, &validation, retention);
    let th_hook = ThresholdHook::new(&hook, &params, table);

    let test_ids: Vec<usize> = (0..24).map(|i| (i * 7 + 3) % 12).collect();
    let xs = dota_detector::metrics::layer_inputs(&model, &params, &test_ids);
    let mut overlap_sum = 0.0;
    let mut count = 0;
    for (l, x) in xs.iter().enumerate() {
        for h in 0..model.config().n_heads {
            use dota_transformer::InferenceHook;
            let topk_sel = hook.inference(&params).select(l, h, x).unwrap();
            let th_sel = th_hook.select(l, h, x).unwrap();
            let topk_ref: Vec<Vec<usize>> = topk_sel
                .iter()
                .map(|r| r.iter().map(|&i| i as usize).collect())
                .collect();
            let th_cand: Vec<Vec<usize>> = th_sel
                .iter()
                .map(|r| r.iter().map(|&i| i as usize).collect())
                .collect();
            overlap_sum += topk::selection_recall(&topk_ref, &th_cand);
            count += 1;
        }
    }
    let mean_overlap = overlap_sum / count as f64;
    assert!(
        mean_overlap > 0.6,
        "threshold selection diverged from top-k: overlap {mean_overlap:.3}"
    );
}

/// Incremental KV-cache decoding must agree with batch inference on every
/// prefix (not just the final position).
#[test]
fn incremental_decode_agrees_on_all_prefixes() {
    use dota_transformer::{DenseDecode, KvCache, NoHook};
    let mut params = ParamSet::new();
    let model = Model::init(TransformerConfig::tiny_causal(16, 8), &mut params, 3);
    let ids = [1usize, 5, 2, 7, 4, 0, 3];
    let mut cache = KvCache::new(model.config().n_layers, model.config().d_model);
    for t in 0..ids.len() {
        let (logits, _) = model.decode_step(&params, &mut cache, ids[t], &DenseDecode);
        let batch = model.infer(&params, &ids[..=t], &NoHook);
        let batch_row = batch.logits.slice_rows(t, t + 1);
        assert!(
            logits.approx_eq(&batch_row, 1e-3),
            "prefix {t}: incremental and batch logits diverge"
        );
    }
}
