//! Load-test suite for `dota serve`: the deterministic continuous-batching
//! service's headline claims, proven end to end.
//!
//! 1. The bench report is **byte-identical** across `DOTA_THREADS`
//!    settings (and CI additionally `cmp`s serial vs `--features parallel`
//!    builds): the scheduler is serial, per-slot decodes are independent,
//!    and the clock is simulated, so thread count cannot leak into bytes.
//! 2. Under the same offered overload, **retention shedding beats
//!    queue-only** on tail latency: degrading admission retention trades
//!    a little per-request attention for a strictly lower p99 e2e.
//! 3. The canonical JSON **round-trips through `dota report diff`**: two
//!    same-seed runs diff clean, and a different-seed run is flagged.

use dota_serve::{run_bench, BenchOptions, ShedPolicy};
use std::path::PathBuf;
use std::process::Command;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dota_serve_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn quick_opts() -> BenchOptions {
    BenchOptions {
        requests: 60,
        loads: vec![0.8, 4.0],
        ..Default::default()
    }
}

/// The library-level report is a pure function of its options: rendering
/// it twice under different `DOTA_THREADS` settings (read per scheduler
/// call by the thread pool) yields the same bytes.
#[test]
fn bench_report_bytes_ignore_thread_count() {
    let prev = std::env::var("DOTA_THREADS").ok();
    std::env::set_var("DOTA_THREADS", "1");
    let serial = run_bench(quick_opts()).unwrap().to_json();
    std::env::set_var("DOTA_THREADS", "8");
    let threaded = run_bench(quick_opts()).unwrap().to_json();
    match prev {
        Some(v) => std::env::set_var("DOTA_THREADS", v),
        None => std::env::remove_var("DOTA_THREADS"),
    }
    assert_eq!(serial, threaded, "serve report depends on thread count");
}

/// The CLI writes the same bytes whatever `DOTA_THREADS` says.
#[test]
fn cli_serve_report_byte_identical_across_thread_counts() {
    let dir = scratch_dir("threads");
    let mut reports = Vec::new();
    for threads in ["1", "8"] {
        let path = dir.join(format!("report_t{threads}.json"));
        let out = Command::new(env!("CARGO_BIN_EXE_dota"))
            .args(["serve", "--bench", "--requests", "40", "--out"])
            .arg(&path)
            .env("DOTA_THREADS", threads)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        reports.push(std::fs::read(&path).unwrap());
    }
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        reports[0], reports[1],
        "CLI serve report depends on DOTA_THREADS"
    );
}

/// At 4x offered overload on identical arrivals, admitting at degraded
/// retention yields a strictly lower p99 end-to-end latency than queueing
/// at full quality, without serving fewer requests. This is the service's
/// reason to exist; if the gap closes, something real regressed.
#[test]
fn retention_shedding_beats_queue_only_p99_at_overload() {
    let opts = BenchOptions {
        requests: 120,
        loads: vec![4.0],
        ..Default::default()
    };
    let report = run_bench(opts).unwrap();
    let queue = report.cell(ShedPolicy::QueueOnly, 4.0).unwrap();
    let shed = report.cell(ShedPolicy::Retention, 4.0).unwrap();
    assert!(
        shed.degraded > 0,
        "4x overload should push admissions down the ladder"
    );
    let qp99 = queue.e2e_us.quantile(0.99).unwrap();
    let sp99 = shed.e2e_us.quantile(0.99).unwrap();
    assert!(
        sp99 < qp99,
        "retention p99 {sp99}us should be strictly below queue-only p99 {qp99}us"
    );
    assert!(
        shed.served() >= queue.served(),
        "shedding must not serve fewer requests ({} vs {})",
        shed.served(),
        queue.served()
    );
    // Every offered request reached a terminal state in both cells.
    for cell in [queue, shed] {
        assert_eq!(
            cell.completed + cell.eos + cell.deadline_evicted + cell.queue_expired + cell.rejected,
            cell.offered
        );
    }
}

/// Two same-seed CLI runs produce byte-identical reports that `dota
/// report diff` accepts; a different seed is flagged with a nonzero exit.
#[test]
fn cli_serve_report_roundtrips_through_report_diff() {
    let dir = scratch_dir("diff");
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    let c = dir.join("c.json");
    for (path, seed) in [(&a, "7"), (&b, "7"), (&c, "8")] {
        let out = Command::new(env!("CARGO_BIN_EXE_dota"))
            .args([
                "serve",
                "--bench",
                "--requests",
                "30",
                "--seed",
                seed,
                "--out",
            ])
            .arg(path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "same-seed serve reports differ"
    );
    let same = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["report", "diff"])
        .args([a.display().to_string(), b.display().to_string()])
        .output()
        .unwrap();
    assert!(
        same.status.success(),
        "report diff rejected identical serve reports: {}",
        String::from_utf8_lossy(&same.stderr)
    );
    let changed = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["report", "diff"])
        .args([a.display().to_string(), c.display().to_string()])
        .output()
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        !changed.status.success(),
        "report diff missed a seed change in the serve report"
    );
}

/// The sweep's underload cell serves everything: deadlines and shedding
/// only bite when demand outruns capacity.
#[test]
fn underload_cell_serves_every_request() {
    let report = run_bench(quick_opts()).unwrap();
    for &shed in &[ShedPolicy::QueueOnly, ShedPolicy::Retention] {
        let cell = report.cell(shed, 0.8).unwrap();
        assert_eq!(
            cell.served(),
            cell.offered,
            "{} dropped requests at 0.8x load",
            shed.name()
        );
        assert_eq!(cell.rejected, 0);
    }
}
