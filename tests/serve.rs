//! Load-test suite for `dota serve`: the deterministic continuous-batching
//! service's headline claims, proven end to end.
//!
//! 1. The bench report is **byte-identical** across `DOTA_THREADS`
//!    settings (and CI additionally `cmp`s serial vs `--features parallel`
//!    builds): the scheduler is serial, per-slot decodes are independent,
//!    and the clock is simulated, so thread count cannot leak into bytes.
//! 2. Under the same offered overload, **retention shedding beats
//!    queue-only** on tail latency: degrading admission retention trades
//!    a little per-request attention for a strictly lower p99 e2e.
//! 3. The canonical JSON **round-trips through `dota report diff`**: two
//!    same-seed runs diff clean, and a different-seed run is flagged.

use dota_serve::{run_bench, run_chaos, BenchOptions, ChaosOptions, ShedPolicy};
use std::path::PathBuf;
use std::process::Command;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dota_serve_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Holds a zero-rate fault session while an in-process, fault-free engine
/// run executes: fault sessions are process-global and exclusive, so this
/// serializes against the chaos tests below instead of being contaminated
/// by their injection. CLI tests spawn subprocesses and need no guard.
fn quiet_faults() -> dota_faults::FaultGuard {
    dota_faults::session(dota_faults::FaultPlan::new(0))
}

fn quick_opts() -> BenchOptions {
    BenchOptions {
        requests: 60,
        loads: vec![0.8, 4.0],
        ..Default::default()
    }
}

/// The library-level report is a pure function of its options: rendering
/// it twice under different `DOTA_THREADS` settings (read per scheduler
/// call by the thread pool) yields the same bytes.
#[test]
fn bench_report_bytes_ignore_thread_count() {
    let _quiet = quiet_faults();
    let prev = std::env::var("DOTA_THREADS").ok();
    std::env::set_var("DOTA_THREADS", "1");
    let serial = run_bench(quick_opts()).unwrap().to_json();
    std::env::set_var("DOTA_THREADS", "8");
    let threaded = run_bench(quick_opts()).unwrap().to_json();
    match prev {
        Some(v) => std::env::set_var("DOTA_THREADS", v),
        None => std::env::remove_var("DOTA_THREADS"),
    }
    assert_eq!(serial, threaded, "serve report depends on thread count");
}

/// The CLI writes the same bytes whatever `DOTA_THREADS` says.
#[test]
fn cli_serve_report_byte_identical_across_thread_counts() {
    let dir = scratch_dir("threads");
    let mut reports = Vec::new();
    for threads in ["1", "8"] {
        let path = dir.join(format!("report_t{threads}.json"));
        let out = Command::new(env!("CARGO_BIN_EXE_dota"))
            .args(["serve", "--bench", "--requests", "40", "--out"])
            .arg(&path)
            .env("DOTA_THREADS", threads)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        reports.push(std::fs::read(&path).unwrap());
    }
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        reports[0], reports[1],
        "CLI serve report depends on DOTA_THREADS"
    );
}

/// At 4x offered overload on identical arrivals, admitting at degraded
/// retention yields a strictly lower p99 end-to-end latency than queueing
/// at full quality, without serving fewer requests. This is the service's
/// reason to exist; if the gap closes, something real regressed.
#[test]
fn retention_shedding_beats_queue_only_p99_at_overload() {
    let _quiet = quiet_faults();
    let opts = BenchOptions {
        requests: 120,
        loads: vec![4.0],
        ..Default::default()
    };
    let report = run_bench(opts).unwrap();
    let queue = report.cell(ShedPolicy::QueueOnly, 4.0).unwrap();
    let shed = report.cell(ShedPolicy::Retention, 4.0).unwrap();
    assert!(
        shed.degraded > 0,
        "4x overload should push admissions down the ladder"
    );
    let qp99 = queue.e2e_us.quantile(0.99).unwrap();
    let sp99 = shed.e2e_us.quantile(0.99).unwrap();
    assert!(
        sp99 < qp99,
        "retention p99 {sp99}us should be strictly below queue-only p99 {qp99}us"
    );
    assert!(
        shed.served() >= queue.served(),
        "shedding must not serve fewer requests ({} vs {})",
        shed.served(),
        queue.served()
    );
    // Every offered request reached a terminal state in both cells.
    for cell in [queue, shed] {
        assert_eq!(
            cell.completed + cell.eos + cell.deadline_evicted + cell.queue_expired + cell.rejected,
            cell.offered
        );
    }
}

/// Two same-seed CLI runs produce byte-identical reports that `dota
/// report diff` accepts; a different seed is flagged with a nonzero exit.
#[test]
fn cli_serve_report_roundtrips_through_report_diff() {
    let dir = scratch_dir("diff");
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    let c = dir.join("c.json");
    for (path, seed) in [(&a, "7"), (&b, "7"), (&c, "8")] {
        let out = Command::new(env!("CARGO_BIN_EXE_dota"))
            .args([
                "serve",
                "--bench",
                "--requests",
                "30",
                "--seed",
                seed,
                "--out",
            ])
            .arg(path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "same-seed serve reports differ"
    );
    let same = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["report", "diff"])
        .args([a.display().to_string(), b.display().to_string()])
        .output()
        .unwrap();
    assert!(
        same.status.success(),
        "report diff rejected identical serve reports: {}",
        String::from_utf8_lossy(&same.stderr)
    );
    let changed = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["report", "diff"])
        .args([a.display().to_string(), c.display().to_string()])
        .output()
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        !changed.status.success(),
        "report diff missed a seed change in the serve report"
    );
}

/// The request timeline is byte-identical across thread counts, just like
/// the bench report: the recorder only observes the (serial) scheduler
/// loop, so parallel per-slot decode cannot leak into its bytes.
#[test]
fn timeline_bytes_ignore_thread_count() {
    let _quiet = quiet_faults();
    let opts = || BenchOptions {
        timeline: true,
        ..quick_opts()
    };
    let prev = std::env::var("DOTA_THREADS").ok();
    std::env::set_var("DOTA_THREADS", "1");
    let serial = run_bench(opts()).unwrap().timeline.unwrap().to_json();
    std::env::set_var("DOTA_THREADS", "8");
    let threaded = run_bench(opts()).unwrap().timeline.unwrap().to_json();
    match prev {
        Some(v) => std::env::set_var("DOTA_THREADS", v),
        None => std::env::remove_var("DOTA_THREADS"),
    }
    assert_eq!(serial, threaded, "serve timeline depends on thread count");
}

/// Recording the timeline must not change the bench report by a single
/// byte: the recorder and SLO monitor observe the schedule, never steer
/// it. This pins the acceptance bar that enabling observability leaves
/// `results/serve_baseline.json` untouched.
#[test]
fn timeline_recording_leaves_bench_report_bytes_unchanged() {
    let _quiet = quiet_faults();
    let without = run_bench(quick_opts()).unwrap().to_json();
    let with = run_bench(BenchOptions {
        timeline: true,
        ..quick_opts()
    })
    .unwrap()
    .to_json();
    assert_eq!(without, with, "recording the timeline perturbed the report");
}

/// The telemetry plane is observation-only: attaching a flight recorder
/// and live gauges to a bench run cannot move a single scheduling
/// decision, so the report keeps its exact bytes. This is the invariant
/// that lets `--metrics-addr` run against production baselines.
#[test]
fn telemetry_attachment_leaves_bench_report_bytes_unchanged() {
    let _quiet = quiet_faults();
    let without = run_bench(quick_opts()).unwrap().to_json();
    let flight = dota_telemetry::FlightRecorder::shared(4096);
    let gauges = std::sync::Arc::new(dota_telemetry::ServeGauges::new());
    let with = run_bench(BenchOptions {
        flight: Some(std::sync::Arc::clone(&flight)),
        gauges: Some(std::sync::Arc::clone(&gauges)),
        ..quick_opts()
    })
    .unwrap()
    .to_json();
    assert_eq!(without, with, "attaching telemetry perturbed the report");
    // And the observers did observe: events were recorded and the last
    // published sample names the final cell.
    let rec = flight
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    assert!(rec.recorded() > 0, "flight recorder saw no events");
    assert_eq!(
        rec.cells().last().map(String::as_str),
        Some("serve[retention@4x]")
    );
    assert_eq!(gauges.snapshot().cell, "serve[retention@4x]");
}

/// The CLI timeline round-trips: `serve --timeline` writes the same bytes
/// whatever DOTA_THREADS says, `report diff` accepts the pair, and
/// `analyze --serve` audits it clean (decomposition and ladder consistent)
/// with a deterministic audit JSON.
#[test]
fn cli_timeline_byte_identical_and_audits_clean() {
    let dir = scratch_dir("timeline");
    let mut timelines = Vec::new();
    for threads in ["1", "8"] {
        let path = dir.join(format!("timeline_t{threads}.json"));
        let out = Command::new(env!("CARGO_BIN_EXE_dota"))
            .args(["serve", "--bench", "--requests", "40", "--timeline"])
            .arg(&path)
            .env("DOTA_THREADS", threads)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        timelines.push(std::fs::read(&path).unwrap());
    }
    assert_eq!(
        timelines[0], timelines[1],
        "CLI serve timeline depends on DOTA_THREADS"
    );
    let tl = dir.join("timeline_t1.json");
    let diff = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["report", "diff"])
        .arg(&tl)
        .arg(dir.join("timeline_t8.json"))
        .output()
        .unwrap();
    assert!(
        diff.status.success(),
        "report diff rejected identical timelines: {}",
        String::from_utf8_lossy(&diff.stderr)
    );
    let mut audits = Vec::new();
    for name in ["audit_a.json", "audit_b.json"] {
        let audit_path = dir.join(name);
        let audit = Command::new(env!("CARGO_BIN_EXE_dota"))
            .args(["analyze", "--serve"])
            .arg(&tl)
            .arg("--out")
            .arg(&audit_path)
            .output()
            .unwrap();
        assert!(
            audit.status.success(),
            "audit rejected a freshly recorded timeline: {}",
            String::from_utf8_lossy(&audit.stderr)
        );
        let stdout = String::from_utf8_lossy(&audit.stdout).to_string();
        assert!(stdout.contains("decomposition ok"), "stdout: {stdout}");
        assert!(stdout.contains("ladder ok"), "stdout: {stdout}");
        audits.push(std::fs::read(&audit_path).unwrap());
    }
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(audits[0], audits[1], "audit JSON is not deterministic");
}

/// A corrupted timeline fails the audit loudly: flipping one attended
/// count flips `ladder_consistent` and the exit code.
#[test]
fn cli_audit_flags_a_tampered_timeline() {
    let dir = scratch_dir("tamper");
    let tl = dir.join("timeline.json");
    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["serve", "--bench", "--requests", "20", "--loads", "4.0"])
        .args(["--timeline"])
        .arg(&tl)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let raw = std::fs::read_to_string(&tl).unwrap();
    // Bump one step's attended column (index 4 of 7) in place, keeping
    // the JSON valid.
    let start = raw.find("\"steps\":[[").expect("timeline has steps") + "\"steps\":[[".len();
    let end = start + raw[start..].find(']').unwrap();
    let mut cols: Vec<u64> = raw[start..end]
        .split(',')
        .map(|c| c.parse().unwrap())
        .collect();
    assert_eq!(cols.len(), 7, "step rows are 7 columns");
    cols[4] += 1;
    let tampered = format!(
        "{}{}{}",
        &raw[..start],
        cols.iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(","),
        &raw[end..]
    );
    std::fs::write(&tl, tampered).unwrap();
    let audit = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["analyze", "--serve"])
        .arg(&tl)
        .output()
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        !audit.status.success(),
        "audit accepted a tampered timeline"
    );
    assert!(
        String::from_utf8_lossy(&audit.stderr).contains("inconsistent"),
        "stderr: {}",
        String::from_utf8_lossy(&audit.stderr)
    );
}

/// The sweep's underload cell serves everything: deadlines and shedding
/// only bite when demand outruns capacity.
#[test]
fn underload_cell_serves_every_request() {
    let _quiet = quiet_faults();
    let report = run_bench(quick_opts()).unwrap();
    for &shed in &[ShedPolicy::QueueOnly, ShedPolicy::Retention] {
        let cell = report.cell(shed, 0.8).unwrap();
        assert_eq!(
            cell.served(),
            cell.offered,
            "{} dropped requests at 0.8x load",
            shed.name()
        );
        assert_eq!(cell.rejected, 0);
    }
}

/// The closed-loop controller earns its keep: at 4x overload on identical
/// arrivals, `--shed slo` is no worse than the static retention ladder on
/// both p99 e2e latency and the rolling deadline hit rate, and it actually
/// engages (degraded admissions, controller activity in the report).
#[test]
fn slo_control_no_worse_than_static_retention_at_overload() {
    let _quiet = quiet_faults();
    let opts = BenchOptions {
        requests: 120,
        loads: vec![4.0],
        sheds: vec![ShedPolicy::Retention, ShedPolicy::Slo],
        ..Default::default()
    };
    let report = run_bench(opts).unwrap();
    let fixed = report.cell(ShedPolicy::Retention, 4.0).unwrap();
    let slo = report.cell(ShedPolicy::Slo, 4.0).unwrap();
    assert!(slo.degraded > 0, "controller never degraded at 4x overload");
    let ctl = slo
        .control
        .as_ref()
        .expect("slo cell carries a control summary");
    assert!(ctl.changes > 0, "controller never moved off the top rung");
    let fp99 = fixed.e2e_us.quantile(0.99).unwrap();
    let sp99 = slo.e2e_us.quantile(0.99).unwrap();
    assert!(
        sp99 <= fp99,
        "slo p99 {sp99}us must be no worse than static retention p99 {fp99}us"
    );
    let fixed_hit = fixed.slo_hit_rate().unwrap();
    let slo_hit = slo.slo_hit_rate().unwrap();
    assert!(
        slo_hit >= fixed_hit,
        "slo hit rate {slo_hit} must be no worse than static retention {fixed_hit}"
    );
}

/// The chaos report is byte-identical across `DOTA_THREADS`: fault
/// decisions hash deterministic coordinates and the scheduler loop is
/// serial, so injection cannot make thread count visible.
#[test]
fn chaos_report_bytes_ignore_thread_count() {
    let opts = || ChaosOptions {
        bench: BenchOptions {
            requests: 30,
            loads: vec![1.0, 4.0],
            ..Default::default()
        },
        rates: vec![0.0, 0.1],
        ..Default::default()
    };
    let prev = std::env::var("DOTA_THREADS").ok();
    std::env::set_var("DOTA_THREADS", "1");
    let serial = run_chaos(opts()).unwrap().to_json();
    std::env::set_var("DOTA_THREADS", "8");
    let threaded = run_chaos(opts()).unwrap().to_json();
    match prev {
        Some(v) => std::env::set_var("DOTA_THREADS", v),
        None => std::env::remove_var("DOTA_THREADS"),
    }
    assert_eq!(serial, threaded, "chaos report depends on thread count");
}

/// The chaos CLI writes the same bytes whatever `DOTA_THREADS` says, the
/// pair diffs clean, and the faulted cells still serve: availability
/// degrades, it does not collapse.
#[test]
fn cli_chaos_report_byte_identical_and_serves_under_faults() {
    let dir = scratch_dir("chaos");
    let mut reports = Vec::new();
    for threads in ["1", "8"] {
        let path = dir.join(format!("chaos_t{threads}.json"));
        let out = Command::new(env!("CARGO_BIN_EXE_dota"))
            .args(["serve", "--chaos", "--requests", "30"])
            .args(["--loads", "1.0,4.0", "--chaos-rates", "0,0.1", "--out"])
            .arg(&path)
            .env("DOTA_THREADS", threads)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        reports.push(std::fs::read(&path).unwrap());
    }
    assert_eq!(
        reports[0], reports[1],
        "CLI chaos report depends on DOTA_THREADS"
    );
    let diff = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["report", "diff"])
        .arg(dir.join("chaos_t1.json"))
        .arg(dir.join("chaos_t8.json"))
        .output()
        .unwrap();
    assert!(
        diff.status.success(),
        "report diff rejected identical chaos reports: {}",
        String::from_utf8_lossy(&diff.stderr)
    );
    let raw = std::fs::read_to_string(dir.join("chaos_t1.json")).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    // Every cell — including the faulted ones — served something.
    assert!(
        !raw.contains("\"served_fraction\":0,"),
        "a cell served nothing: {raw}"
    );
    assert!(
        raw.contains("\"rate\":0.1"),
        "faulted cells missing from the report"
    );
}

/// A timeline recorded under live fault injection still audits clean:
/// retries re-emit identical tokens (exactly-once terminals hold), the
/// decomposition identities survive faulted steps, and the audit surfaces
/// the retry/failure tallies instead of miscounting them as losses.
#[test]
fn cli_faulted_timeline_audits_clean() {
    let dir = scratch_dir("faulted_tl");
    let tl = dir.join("timeline.json");
    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["serve", "--requests", "30", "--load", "4.0", "--timeline"])
        .arg(&tl)
        .args([
            "--faults",
            "slot.fail=0.05,kv.corrupt=0.05,decode.timeout=0.05",
        ])
        .args(["--fault-seed", "11"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let audit = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args(["analyze", "--serve"])
        .arg(&tl)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&audit.stdout).to_string();
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        audit.status.success(),
        "audit rejected a faulted timeline: {stdout}\n{}",
        String::from_utf8_lossy(&audit.stderr)
    );
    assert!(stdout.contains("terminals ok"), "stdout: {stdout}");
    assert!(
        stdout.contains("retried"),
        "faulted run should surface retry tallies: {stdout}"
    );
}
