//! End-to-end CLI telemetry tests: `dota train --metrics-out` must produce
//! a deterministic metrics JSONL and a provenance manifest, and
//! `dota report diff` must accept identical-seed runs while flagging a run
//! with a perturbed configuration.

use std::path::{Path, PathBuf};
use std::process::Command;

fn run_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dota_cli_report_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Trains the tiny text preset into `dir` under a fixed thread budget.
fn train(dir: &Path, threads: &str, retention: &str) {
    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .args([
            "train",
            "text",
            "--seq",
            "16",
            "--samples",
            "40",
            "--epochs",
            "2",
            "--retention",
            retention,
            "--metrics-out",
        ])
        .arg(dir)
        .env("DOTA_THREADS", threads)
        .output()
        .expect("run dota train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn report_diff(a: &Path, b: &Path) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dota"))
        .arg("report")
        .arg("diff")
        .arg(a)
        .arg(b)
        .output()
        .expect("run dota report diff");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn metrics_are_deterministic_and_diff_flags_perturbations() {
    let run_t1 = run_dir("t1");
    let run_t8 = run_dir("t8");
    let run_perturbed = run_dir("perturbed");

    // Same seed and config under different thread budgets: the GEMM
    // kernels are bit-compatible across DOTA_THREADS (see the parallel
    // layer's reproducibility tests), so the logged loss series must be
    // byte-identical.
    train(&run_t1, "1", "0.25");
    train(&run_t8, "8", "0.25");
    let jsonl_t1 = std::fs::read(run_t1.join("metrics.jsonl")).expect("read t1 metrics");
    let jsonl_t8 = std::fs::read(run_t8.join("metrics.jsonl")).expect("read t8 metrics");
    assert!(!jsonl_t1.is_empty(), "metrics.jsonl is empty");
    assert_eq!(
        jsonl_t1, jsonl_t8,
        "metrics.jsonl differs between DOTA_THREADS=1 and 8"
    );
    let text = String::from_utf8(jsonl_t1).expect("metrics.jsonl is UTF-8");
    for line in text.lines() {
        assert!(
            line.starts_with("{\"step\":"),
            "malformed metrics row: {line}"
        );
    }
    assert!(
        text.lines().any(|l| l.contains("\"joint.loss\"")),
        "no joint-phase rows logged"
    );

    // The run directory carries its provenance manifest and results file.
    let manifest =
        std::fs::read_to_string(run_t1.join("manifest.json")).expect("read manifest.json");
    for key in ["\"label\"", "\"git_sha\"", "\"seed\"", "\"config\""] {
        assert!(manifest.contains(key), "manifest missing {key}: {manifest}");
    }
    assert!(
        run_t1.join("train_results.json").exists(),
        "train_results.json missing"
    );

    // Identical-seed runs diff clean: `threads` is a volatile manifest key
    // and every measured value matches exactly.
    let (ok, diff_text) = report_diff(&run_t1, &run_t8);
    assert!(ok, "identical runs reported as regressed:\n{diff_text}");
    assert!(
        diff_text.contains("no regressions"),
        "unexpected diff output:\n{diff_text}"
    );

    // A perturbed retention changes both the manifest config and the
    // training trajectory — the diff must flag it and exit non-zero.
    train(&run_perturbed, "1", "0.5");
    let (ok, diff_text) = report_diff(&run_t1, &run_perturbed);
    assert!(!ok, "perturbed run was not flagged:\n{diff_text}");
    assert!(
        diff_text.contains("REGRESSION"),
        "no REGRESSION lines in output:\n{diff_text}"
    );

    for dir in [run_t1, run_t8, run_perturbed] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
